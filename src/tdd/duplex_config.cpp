#include "tdd/duplex_config.hpp"

namespace u5g {

std::string DuplexConfig::render_period() const {
  std::string out;
  for (int s = 0; s < period_slots(); ++s) {
    if (s != 0) out += '|';
    for (int k = 0; k < kSymbolsPerSlot; ++k) {
      const bool d = dl_capable(s, k);
      const bool u = ul_capable(s, k);
      out += d && u ? 'X' : d ? 'D' : u ? 'U' : '-';
    }
  }
  return out;
}

bool DuplexConfig::slot_has_dl(SlotIndex slot) const {
  for (int k = 0; k < kSymbolsPerSlot; ++k) {
    if (dl_capable(slot, k)) return true;
  }
  return false;
}

bool DuplexConfig::slot_has_ul(SlotIndex slot) const {
  for (int k = 0; k < kSymbolsPerSlot; ++k) {
    if (ul_capable(slot, k)) return true;
  }
  return false;
}

}  // namespace u5g
