#pragma once
// Periodic process helper: fires a callback every `period`, starting at
// `phase`. Used for per-slot MAC scheduling, SR opportunities, traffic
// generators, and the radio-head sample clock.

#include <functional>
#include <utility>

#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace u5g {

/// Re-arms itself each tick; `stop()` cancels cleanly. Non-copyable because
/// the scheduled closure captures `this`.
class PeriodicProcess {
 public:
  using Tick = std::function<void(Nanos now)>;

  PeriodicProcess(Simulator& sim, Nanos period, Tick tick, Nanos phase = Nanos::zero())
      : sim_(sim), period_(period), tick_(std::move(tick)) {
    if (period_ <= Nanos::zero()) throw std::invalid_argument{"PeriodicProcess: period <= 0"};
    const Nanos first = phase < sim_.now() ? align_up(sim_.now(), period_, phase) : phase;
    arm(first);
  }

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  ~PeriodicProcess() { stop(); }

  void stop() {
    if (running_) {
      sim_.cancel(next_);
      running_ = false;
    }
  }

  [[nodiscard]] Nanos period() const { return period_; }

 private:
  void arm(Nanos when) {
    running_ = true;
    next_ = sim_.schedule_at(when, [this, when] {
      tick_(when);
      if (running_) arm(when + period_);
    });
  }

  Simulator& sim_;
  Nanos period_;
  Tick tick_;
  EventHandle next_;
  bool running_ = false;
};

}  // namespace u5g
