#pragma once
// RLC PDU formats (TS 38.322, condensed).
//
// Segmentation info (SI) encodes whether a PDU carries a complete SDU or a
// first/middle/last segment; segments other than the first carry a 16-bit
// segment offset (SO). One deliberate simplification, documented here: the
// standard omits the SN from SI=Complete UMD PDUs; we always carry it — one
// byte of overhead in exchange for uniform tracing and reassembly logic.

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace u5g {

enum class SegmentInfo : std::uint8_t {
  Complete = 0b00,
  First = 0b01,
  Last = 0b10,
  Middle = 0b11,
};

/// Decoded RLC data PDU header (UM and AM share this shape here; AM adds
/// the poll flag).
struct RlcHeader {
  SegmentInfo si = SegmentInfo::Complete;
  std::uint16_t sn = 0;        ///< 12-bit sequence number
  std::uint16_t so = 0;        ///< segment offset (bytes), Middle/Last only
  bool poll = false;           ///< AM: request a status report

  [[nodiscard]] std::size_t encoded_size() const {
    return needs_so() ? 4u : 2u;
  }
  [[nodiscard]] bool needs_so() const {
    return si == SegmentInfo::Middle || si == SegmentInfo::Last;
  }

  /// Prepend this header to `pdu`.
  void encode(ByteBuffer& pdu) const;

  /// Pop and decode a header; nullopt on truncation.
  static std::optional<RlcHeader> decode(ByteBuffer& pdu);
};

/// Largest RLC header this format can produce (worst case: with SO).
inline constexpr std::size_t kMaxRlcHeader = 4;

}  // namespace u5g
