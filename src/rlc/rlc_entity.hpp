#pragma once
// RLC entities (TS 38.322): TM passthrough, UM with segmentation/reassembly,
// AM adding ARQ (retransmission on NACK).
//
// Latency-wise RLC plays two roles in the paper:
//  * Its *processing* time is small (Table 2: 4.12 µs mean), but
//  * its *queue* is where data waits for the per-slot MAC scheduler — the
//    RLC-q row of Table 2 (484 µs mean), by far the largest gNB component.
// The TX side therefore timestamps every SDU at enqueue so the harness can
// measure queuing delay exactly as the paper does.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/delivery.hpp"
#include "common/ring.hpp"
#include "common/time.hpp"
#include "rlc/rlc_pdu.hpp"

namespace u5g {

enum class RlcMode { TM, UM, AM };

/// One PDU pulled from the TX entity, with the enqueue timestamp of the SDU
/// it (partially) carries — the RLC-q measurement hook.
struct RlcTxPdu {
  ByteBuffer pdu;
  Nanos sdu_enqueued_at;
  std::uint16_t sn = 0;
  bool is_retransmission = false;
};

/// Transmit-side RLC.
class RlcTx {
 public:
  explicit RlcTx(RlcMode mode, int poll_every = 8) : mode_(mode), poll_every_(poll_every) {}

  /// Queue an SDU (timestamped by the caller's clock).
  void enqueue(ByteBuffer&& sdu, Nanos now);

  /// Build the next PDU of at most `max_bytes` (header included). Segments
  /// when the head SDU does not fit. Retransmissions (AM) take priority.
  /// Returns nullopt when nothing is pending or `max_bytes` cannot fit a
  /// header plus at least one payload byte.
  [[nodiscard]] std::optional<RlcTxPdu> pull(std::size_t max_bytes);

  /// AM only: process a status report — ACKed SNs leave the retransmission
  /// buffer, NACKed SNs are queued for retransmission.
  void on_status(std::uint16_t ack_sn, const std::vector<std::uint16_t>& nack_sns);

  /// AM only: t-PollRetransmit expiry (TS 38.322 §5.3.3.4) — the sender has
  /// unacknowledged PDUs the receiver may never have seen (so no NACK will
  /// ever name them); re-queue every buffered PDU not already scheduled.
  /// Returns how many PDUs were (re)queued.
  std::size_t retransmit_unacked();

  [[nodiscard]] std::size_t queued_sdus() const { return queue_.size(); }
  [[nodiscard]] std::size_t queued_bytes() const;
  [[nodiscard]] bool has_data() const { return !queue_.empty() || !retx_.empty(); }
  [[nodiscard]] RlcMode mode() const { return mode_; }
  [[nodiscard]] std::size_t unacked_pdus() const { return sent_.size(); }

  /// Enqueue time of the oldest queued SDU, if any (for BSR/margin logic).
  [[nodiscard]] std::optional<Nanos> head_enqueued_at() const;

 private:
  struct QueuedSdu {
    ByteBuffer sdu;
    Nanos enqueued_at;
    std::size_t offset = 0;  ///< bytes already sent (segmentation progress)
  };
  struct SentPdu {            // AM retransmission buffer entry
    ByteBuffer pdu;           ///< fully formed PDU (header included)
    Nanos sdu_enqueued_at;
  };
  /// Retransmission-buffer key: segments of one SDU share an SN but differ
  /// in segment offset, and every one of them must be individually
  /// retransmittable (a NACKed SN re-sends all of its segments).
  using SnSo = std::pair<std::uint16_t, std::uint16_t>;

  RlcMode mode_;
  int poll_every_;
  int pdus_since_poll_ = 0;
  std::uint16_t next_sn_ = 0;
  RingDeque<QueuedSdu> queue_;  ///< ring: a warm steady-state queue never allocates
  std::map<SnSo, SentPdu> sent_;                       ///< AM: awaiting ACK
  std::deque<SnSo> retx_;                              ///< AM: NACKed, to resend
};

/// Receive-side RLC: reassembles segments, delivers SDUs.
class RlcRx {
 public:
  /// Non-owning delivery callback, invoked synchronously inside receive()
  /// with `PacketMeta::sn` set to the SDU's sequence number.
  using Deliver = DeliveryFn;

  explicit RlcRx(RlcMode mode) : mode_(mode) {}

  /// Process one PDU; complete SDUs go to `deliver`. Returns the decoded
  /// header (for AM status generation), or nullopt if malformed.
  std::optional<RlcHeader> receive(ByteBuffer&& pdu, Deliver deliver);

  /// AM: build a status report: cumulative ACK_SN (next expected) plus the
  /// NACK list of missing SNs below the highest seen.
  struct Status {
    std::uint16_t ack_sn = 0;
    std::vector<std::uint16_t> nacks;
  };
  [[nodiscard]] Status build_status() const;

  [[nodiscard]] std::size_t pending_reassemblies() const { return partial_.size(); }

 private:
  struct Partial {
    std::map<std::uint16_t, ByteBuffer> segments;  ///< keyed by SO
    bool have_last = false;
    std::size_t total_bytes = 0;
    std::size_t last_end = 0;
  };

  void try_reassemble(std::uint16_t sn, Deliver deliver);

  RlcMode mode_;
  std::map<std::uint16_t, Partial> partial_;
  std::uint16_t highest_sn_seen_ = 0;
  bool any_seen_ = false;
  /// AM only: SN -> fully received, feeds build_status(). TM/UM never build
  /// status reports, so they skip this bookkeeping (a map node per packet).
  std::map<std::uint16_t, bool> received_;
};

}  // namespace u5g
