#include "tdd/opportunity.hpp"

#include <algorithm>

namespace u5g {

namespace {

/// Global symbol index across slots.
struct SymbolCursor {
  SlotIndex slot;
  int sym;

  void advance() {
    if (++sym == kSymbolsPerSlot) {
      sym = 0;
      ++slot;
    }
  }
};

Nanos symbol_start(const SlotClock& clk, SymbolCursor c) { return clk.symbol_start(c.slot, c.sym); }

/// End of a symbol; symbol 13 absorbs the integer-division remainder so that
/// it abuts the next slot start exactly.
Nanos symbol_end(const SlotClock& clk, SymbolCursor c) {
  return c.sym == kSymbolsPerSlot - 1 ? clk.slot_end(c.slot)
                                      : clk.symbol_start(c.slot, c.sym + 1);
}

/// First symbol whose start is at or after `t`.
SymbolCursor first_symbol_at_or_after(const SlotClock& clk, Nanos t) {
  SlotIndex slot = clk.slot_at(t);
  int sym = clk.symbol_at(t);
  SymbolCursor c{slot, sym};
  if (symbol_start(clk, c) < t) c.advance();
  return c;
}

}  // namespace

std::optional<TxWindow> next_ul_tx(const DuplexConfig& cfg, Nanos t, int n_symbols,
                                   Nanos search_limit) {
  if (n_symbols <= 0) return std::nullopt;
  const SlotClock clk = cfg.clock();
  SymbolCursor c = first_symbol_at_or_after(clk, t);
  const Nanos deadline = t + search_limit;

  int run = 0;
  SymbolCursor run_start = c;
  while (symbol_start(clk, c) < deadline) {
    if (cfg.ul_capable(c.slot, c.sym)) {
      if (run == 0) run_start = c;
      if (++run == n_symbols) {
        return TxWindow{symbol_start(clk, run_start), symbol_end(clk, c)};
      }
    } else {
      run = 0;
    }
    c.advance();
  }
  return std::nullopt;
}

Nanos next_granule_boundary(const DuplexConfig& cfg, Nanos t) {
  const SlotClock clk = cfg.clock();
  const int g = cfg.control_granularity_symbols();
  const SlotIndex slot = clk.slot_at(t);
  // Granules start at symbols 0, g, 2g, ... within each slot.
  for (int sym = 0; sym < kSymbolsPerSlot; sym += g) {
    const Nanos b = clk.symbol_start(slot, sym);
    if (b >= t) return b;
  }
  return clk.slot_start(slot + 1);
}

Nanos next_scheduler_run(const DuplexConfig& cfg, Nanos t) { return next_granule_boundary(cfg, t); }

std::optional<TxWindow> next_dl_control(const DuplexConfig& cfg, Nanos t, Nanos search_limit) {
  const SlotClock clk = cfg.clock();
  const Nanos deadline = t + search_limit;

  Nanos b = next_granule_boundary(cfg, t);
  while (b < deadline) {
    const SlotIndex slot = clk.slot_at(b);
    const int sym = clk.symbol_at(b);
    if (cfg.dl_capable(slot, sym)) {
      // Control occupies cfg.control_symbols() symbols from the boundary,
      // clamped to the slot (granules never cross slots).
      const int last = std::min(sym + cfg.control_symbols(), kSymbolsPerSlot) - 1;
      return TxWindow{b, symbol_end(clk, SymbolCursor{slot, last})};
    }
    b = next_granule_boundary(cfg, b + Nanos{1});
  }
  return std::nullopt;
}

std::optional<TxWindow> next_dl_data(const DuplexConfig& cfg, Nanos t, Nanos search_limit) {
  const SlotClock clk = cfg.clock();
  const Nanos deadline = t + search_limit;
  const int g = cfg.control_granularity_symbols();

  Nanos b = next_granule_boundary(cfg, t);
  while (b < deadline) {
    const SlotIndex slot = clk.slot_at(b);
    const int first_sym = clk.symbol_at(b);
    const int granule_end_sym = std::min(first_sym + g, kSymbolsPerSlot);
    // Length of the downlink-capable run opening the granule.
    int run = 0;
    while (first_sym + run < granule_end_sym && cfg.dl_capable(slot, first_sym + run)) ++run;
    if (run > cfg.control_symbols()) {
      return TxWindow{b, symbol_end(clk, SymbolCursor{slot, first_sym + run - 1})};
    }
    b = next_granule_boundary(cfg, b + Nanos{1});
  }
  return std::nullopt;
}

}  // namespace u5g
