#pragma once
// NR operating bands (subset of TS 38.101-1/-2 relevant to the paper).
//
// Encodes the constraint the paper leans on (§2, §9): in terrestrial 5G,
// FDD exists only below 2.6 GHz, so private-5G deployments (n78/n79, CBRS)
// are TDD-only — which is why the TDD configuration analysis matters.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "phy/numerology.hpp"

namespace u5g {

enum class DuplexMode { TDD, FDD };

/// An NR operating band: frequency span, duplexing, frequency range.
struct Band {
  std::string_view name;
  double f_low_mhz;
  double f_high_mhz;
  DuplexMode duplex;
  FrequencyRange fr;

  /// Bands above 2.6 GHz are TDD-only in terrestrial 5G (paper §2).
  [[nodiscard]] bool usable_for_private_5g() const { return duplex == DuplexMode::TDD; }
};

/// The bands the paper's discussion touches. n78 is the testbed band (§7).
[[nodiscard]] std::span<const Band> known_bands();

/// Look up a band by name (e.g. "n78"); nullopt when unknown.
[[nodiscard]] std::optional<Band> find_band(std::string_view name);

/// The paper's testbed band: n78, 3.3–3.8 GHz, TDD, FR1.
[[nodiscard]] Band band_n78();

}  // namespace u5g
