#pragma once
// Gilbert–Elliott bursty-loss channel process.
//
// The i.i.d. per-transmission loss in `StackConfig::channel_loss` is the
// error process URLLC analyses like to assume; measurements (the paper's §6,
// Popovski et al. "Wireless Access for URLLC") show real radio failures
// cluster — fading dwells, interference bursts, blockage — and it is exactly
// that clustering that defeats HARQ: a retransmission scheduled one slot
// after a loss lands in the same bad state the first attempt died in.
//
// The model is the classic two-state Markov chain stepped once per
// transmission: a Good state with loss probability `p_good_loss` and a Bad
// state with `p_bad_loss`, with geometric dwell times set by the transition
// probabilities. The i.i.d. process is the degenerate single-state case
// (`p_good_to_bad == 0`, `p_good_loss == loss`), which `Params::iid`
// constructs — distributionally identical to a plain Bernoulli draw per
// transmission.

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace u5g {

class GilbertElliott {
 public:
  struct Params {
    double p_good_loss = 0.0;     ///< loss probability in the Good state
    double p_bad_loss = 0.5;      ///< loss probability in the Bad state
    double p_good_to_bad = 0.01;  ///< per-transmission Good -> Bad transition
    double p_bad_to_good = 0.2;   ///< per-transmission Bad -> Good (1/mean burst)

    /// Degenerate single-state chain == i.i.d. Bernoulli(loss).
    static Params iid(double loss) { return {loss, loss, 0.0, 1.0}; }

    /// Bursty process with a target *average* loss: bursts of mean length
    /// `mean_burst_tx` transmissions at `bad_loss`, loss-free in between,
    /// with the Good->Bad rate chosen so the stationary average equals
    /// `avg_loss`. This is the matched-BLER comparison point for bench_fault.
    static Params matched_average(double avg_loss, double mean_burst_tx = 8.0,
                                  double bad_loss = 0.75) {
      if (!(avg_loss >= 0.0) || avg_loss >= bad_loss) {
        throw std::invalid_argument{"GilbertElliott: need 0 <= avg_loss < bad_loss"};
      }
      const double pi_bad = avg_loss / bad_loss;  // required stationary P(Bad)
      const double p_bg = 1.0 / std::max(mean_burst_tx, 1.0);
      // pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = pi_bad/(1-pi_bad) * p_bg
      const double p_gb = pi_bad >= 1.0 ? 1.0 : pi_bad / (1.0 - pi_bad) * p_bg;
      return {0.0, bad_loss, std::min(p_gb, 1.0), p_bg};
    }

    /// Stationary probability of the Bad state.
    [[nodiscard]] double stationary_bad() const {
      const double denom = p_good_to_bad + p_bad_to_good;
      return denom <= 0.0 ? 0.0 : p_good_to_bad / denom;
    }

    /// Long-run average per-transmission loss probability.
    [[nodiscard]] double average_loss() const {
      const double pb = stationary_bad();
      return (1.0 - pb) * p_good_loss + pb * p_bad_loss;
    }

    [[nodiscard]] bool valid() const {
      const auto in01 = [](double p) { return p >= 0.0 && p <= 1.0; };
      return in01(p_good_loss) && in01(p_bad_loss) && in01(p_good_to_bad) &&
             in01(p_bad_to_good);
    }
  };

  explicit GilbertElliott(Params p) : p_(p) {
    if (!p_.valid()) throw std::invalid_argument{"GilbertElliott: probabilities must be in [0,1]"};
  }

  /// One transmission through the channel: draw the loss outcome from the
  /// current state, then step the chain. Exactly two uniform draws per call
  /// (loss, transition) regardless of state, so the stream stays aligned for
  /// replay/differential runs.
  [[nodiscard]] bool transmit_lost(Rng& rng) {
    const bool lost = rng.bernoulli(bad_ ? p_.p_bad_loss : p_.p_good_loss);
    const double flip = bad_ ? p_.p_bad_to_good : p_.p_good_to_bad;
    if (rng.bernoulli(flip)) bad_ = !bad_;
    return lost;
  }

  [[nodiscard]] bool in_bad_state() const { return bad_; }
  [[nodiscard]] const Params& params() const { return p_; }

 private:
  Params p_;
  bool bad_ = false;
};

}  // namespace u5g
