// Feasibility-query service under load: the Table 1 verdict as an online
// query engine. The workload is a repeated sweep over a 120-query universe
// (5 Table 1 candidate patterns x 3 access modes x 4 deadlines x 2 analytic
// model variants) — the shape a network-planning tool produces when it
// re-asks the same feasibility questions across scenarios.
//
// Reported: per-query latency (p50/p99) and sustained queries/s for the
// synchronous path, queries/s for the batch path, and the analytic cache
// hit rate. `--strict` gates the service's correctness contract:
//   * every answer bit-identical to offline `analyze_worst_case`;
//   * warm (cached) answers bit-identical to the cold misses;
//   * analytic cache hit rate > 90% on the repeated-sweep workload;
//   * sim-tail answers bitwise identical at 1/2/8 sim threads, and a warm
//     tail hit identical to its cold miss.
//
// CLI: [--queries N] [--batch N] [--async] [--json FILE] [--strict] [--smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/feasibility.hpp"
#include "serve/feasibility_service.hpp"

using namespace u5g;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench_serve: STRICT FAILURE: %s\n", what);
    ++g_failures;
  }
}

/// Exact (bitwise for the derived doubles) equality of two analytic results.
bool same_worst_case(const WorstCaseResult& a, const WorstCaseResult& b) {
  return a.worst == b.worst && a.best == b.best && a.mean == b.mean &&
         a.worst_arrival_offset == b.worst_arrival_offset && a.feasible == b.feasible;
}

/// The repeated-sweep universe: every Table 1 pattern, every access mode,
/// four deadlines, two analytic model variants (idealised and a software
/// stack with per-end processing + radio costs).
QueryBatch build_universe() {
  static std::vector<std::shared_ptr<const DuplexConfig>> cfgs = [] {
    std::vector<std::shared_ptr<const DuplexConfig>> v;
    for (auto& c : table1_configs()) v.emplace_back(std::move(c));
    return v;
  }();
  LatencyModelParams software;
  software.sender_processing = Nanos{100'000};
  software.receiver_processing = Nanos{150'000};
  software.radio_tx = Nanos{50'000};
  software.radio_rx = Nanos{50'000};
  QueryBatch universe;
  for (const auto& cfg : cfgs) {
    for (AccessMode m :
         {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
      for (Nanos deadline : {Nanos{250'000}, Nanos{500'000}, Nanos{1'000'000}, Nanos{2'000'000}}) {
        for (const LatencyModelParams& p : {LatencyModelParams{}, software}) {
          universe.push_back(FeasibilityQuery::analytic(cfg, m, deadline, p));
        }
      }
    }
  }
  return universe;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv);
  const QueryBatch universe = build_universe();
  const int total = opt.queries > 0 ? opt.queries : (opt.smoke ? 20'000 : 200'000);
  std::printf("== feasibility-query service: %d queries over a %zu-query universe ==\n\n", total,
              universe.size());

  // -- Gate: service answers bit-identical to the offline analytic path ------
  FeasibilityService service;
  for (const FeasibilityQuery& q : universe) {
    const WorstCaseResult direct = analyze_worst_case(*q.duplex, q.mode, q.model, q.grid_per_symbol);
    const FeasibilityVerdict v = service.query(q);
    check(same_worst_case(v.worst_case, direct), "service != offline analyze_worst_case");
    const bool direct_meets = direct.feasible && direct.worst <= q.deadline;
    check(v.meets_deadline == direct_meets, "service verdict != offline verdict");
  }
  std::printf("bit-identity vs offline analyze_worst_case over the universe: %s\n",
              g_failures == 0 ? "ok" : "FAILED");

  // -- Sync pass: per-query latency + sustained throughput -------------------
  FeasibilityService sync_service;
  std::vector<FeasibilityVerdict> cold(universe.size());
  SampleSet per_query_ns;
  const auto sync_t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < total; ++i) {
    const std::size_t u = static_cast<std::size_t>(i) % universe.size();
    const auto q0 = std::chrono::steady_clock::now();
    FeasibilityVerdict v = sync_service.query(universe[u]);
    per_query_ns.add(std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - q0)
                         .count());
    if (static_cast<std::size_t>(i) < universe.size()) {
      cold[u] = v;  // first lap = the cold misses
    } else if (opt.strict && !same_worst_case(v.worst_case, cold[u].worst_case)) {
      check(false, "warm (cached) answer differs from its cold miss");
    }
  }
  const double sync_wall = seconds_since(sync_t0);
  const double qps = static_cast<double>(total) / sync_wall;
  const double p50_us = per_query_ns.quantile(0.50) / 1e3;
  const double p99_us = per_query_ns.quantile(0.99) / 1e3;
  const FeasibilityService::Stats sync_stats = sync_service.stats();
  std::printf("sync:  %.0f queries/s, per-query p50 %.2f us, p99 %.2f us\n", qps, p50_us, p99_us);
  std::printf("cache: hit rate %.2f%% (%llu hits / %llu misses)\n",
              100.0 * sync_stats.analytic_hit_rate(),
              static_cast<unsigned long long>(sync_stats.analytic_hits),
              static_cast<unsigned long long>(sync_stats.analytic_misses));
  if (opt.strict) check(sync_stats.analytic_hit_rate() > 0.90, "analytic hit rate <= 90%");

  // -- Batch pass ------------------------------------------------------------
  FeasibilityService batch_service;
  const int batch_size = opt.batch > 0 ? opt.batch : 4096;
  int issued = 0;
  const auto batch_t0 = std::chrono::steady_clock::now();
  while (issued < total) {
    QueryBatch b;
    b.reserve(static_cast<std::size_t>(batch_size));
    for (int i = 0; i < batch_size && issued < total; ++i, ++issued) {
      b.push_back(universe[static_cast<std::size_t>(issued) % universe.size()]);
    }
    const std::vector<FeasibilityVerdict> vs = batch_service.query_batch(b);
    if (opt.strict) {
      for (std::size_t i = 0; i < vs.size(); ++i) {
        const std::size_t u = static_cast<std::size_t>(issued - static_cast<int>(vs.size()) +
                                                       static_cast<int>(i)) %
                              universe.size();
        check(same_worst_case(vs[i].worst_case, cold[u].worst_case), "batch answer != sync answer");
      }
    }
  }
  const double batch_wall = seconds_since(batch_t0);
  const double batch_qps = static_cast<double>(total) / batch_wall;
  std::printf("batch: %.0f queries/s at batch size %d\n", batch_qps, batch_size);

  // -- Async completion paths ------------------------------------------------
  {
    FeasibilityService async_service;
    std::vector<std::future<FeasibilityVerdict>> futs;
    futs.reserve(universe.size());
    for (const FeasibilityQuery& q : universe) futs.push_back(async_service.query_async(q));
    for (std::size_t i = 0; i < futs.size(); ++i) {
      check(same_worst_case(futs[i].get().worst_case, cold[i].worst_case),
            "query_async answer != sync answer");
    }
    std::promise<std::vector<FeasibilityVerdict>> done;
    std::future<std::vector<FeasibilityVerdict>> done_fut = done.get_future();
    async_service.query_batch_async(
        universe, [&done](std::vector<FeasibilityVerdict> vs) { done.set_value(std::move(vs)); });
    const std::vector<FeasibilityVerdict> vs = done_fut.get();
    check(vs.size() == universe.size(), "query_batch_async result count");
    for (std::size_t i = 0; i < vs.size(); ++i) {
      check(same_worst_case(vs[i].worst_case, cold[i].worst_case),
            "query_batch_async answer != sync answer");
    }
    std::printf("async: future + callback completions match sync answers: %s\n",
                g_failures == 0 ? "ok" : "FAILED");
  }

  // -- Sim-tail fallback: deterministic across service sim threads -----------
  const int reps = opt.smoke ? 2 : 4;
  const int tail_packets = opt.smoke ? 8 : 24;
  double tail_q_us[3] = {};
  bool tail_warm_hit = false;
  const int thread_counts[3] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    FeasibilityService::Options o;
    o.sim_threads = thread_counts[t];
    FeasibilityService tail_service(o);
    const FeasibilityQuery q = FeasibilityQuery::with_tail(
        StackConfig::testbed_grant_free(7), AccessMode::GrantFreeUl, Nanos{5'000'000}, reps,
        tail_packets, 0.99);
    const FeasibilityVerdict v = tail_service.query(q);
    check(v.tail.has_value() && !v.tail_cache_hit, "cold tail query should miss the cache");
    tail_q_us[t] = v.tail->quantile_latency_us;
    const FeasibilityVerdict warm = tail_service.query(q);
    tail_warm_hit = warm.tail_cache_hit;
    check(warm.tail_cache_hit, "warm tail query should hit the cache");
    check(std::memcmp(&warm.tail->quantile_latency_us, &v.tail->quantile_latency_us,
                      sizeof(double)) == 0,
          "warm tail answer != cold tail answer");
  }
  check(std::memcmp(&tail_q_us[0], &tail_q_us[1], sizeof(double)) == 0,
        "sim tail differs between 1 and 2 sim threads");
  check(std::memcmp(&tail_q_us[0], &tail_q_us[2], sizeof(double)) == 0,
        "sim tail differs between 1 and 8 sim threads");
  std::printf("tail:  p99 %.1f us, bitwise identical at 1/2/8 sim threads, warm hit %s\n\n",
              tail_q_us[0], tail_warm_hit ? "ok" : "MISSING");

  if (opt.json) {
    std::FILE* f = std::fopen(opt.json->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n", opt.json->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"queries\": %d,\n  \"universe\": %zu,\n", total, universe.size());
    std::fprintf(f, "  \"queries_per_s\": %.1f,\n  \"batch_queries_per_s\": %.1f,\n", qps,
                 batch_qps);
    std::fprintf(f, "  \"batch_size\": %d,\n", batch_size);
    std::fprintf(f, "  \"p50_query_us\": %.3f,\n  \"p99_query_us\": %.3f,\n", p50_us, p99_us);
    std::fprintf(f, "  \"analytic_hit_rate\": %.6f,\n", sync_stats.analytic_hit_rate());
    std::fprintf(f, "  \"tail_p99_us\": %.3f,\n", tail_q_us[0]);
    std::fprintf(f, "  \"strict_failures\": %d\n}\n", g_failures);
    std::fclose(f);
  }

  std::printf("headline: %.0f queries/s sync, %.0f queries/s batched, p99 %.2f us, "
              "hit rate %.2f%%\n",
              qps, batch_qps, p99_us, 100.0 * sync_stats.analytic_hit_rate());
  if (opt.strict && g_failures > 0) {
    std::fprintf(stderr, "bench_serve: %d strict failure(s)\n", g_failures);
    return 1;
  }
  return 0;
}
