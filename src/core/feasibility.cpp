#include "core/feasibility.hpp"

#include <stdexcept>

#include "serve/feasibility_service.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"

namespace u5g {

const FeasibilityCell& FeasibilityColumn::cell(AccessMode m) const {
  for (const FeasibilityCell& c : cells) {
    if (c.mode == m) return c;
  }
  throw std::out_of_range{"FeasibilityColumn: mode not evaluated"};
}

FeasibilityColumn evaluate_config(const DuplexConfig& cfg, Nanos deadline,
                                  const LatencyModelParams& p) {
  return FeasibilityService::shared().evaluate_column(cfg, deadline, p);
}

std::vector<std::unique_ptr<DuplexConfig>> table1_configs() {
  std::vector<std::unique_ptr<DuplexConfig>> cfgs;
  cfgs.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::du(kMu2)));
  cfgs.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::dm(kMu2)));
  cfgs.push_back(std::make_unique<TddCommonConfig>(TddCommonConfig::mu(kMu2)));
  cfgs.push_back(std::make_unique<MiniSlotConfig>(kMu2, 2));
  cfgs.push_back(std::make_unique<FddConfig>(kMu2));
  return cfgs;
}

Table1 build_table1(Nanos deadline, const LatencyModelParams& p) {
  Table1 t;
  for (const auto& cfg : table1_configs()) {
    t.columns.push_back(evaluate_config(*cfg, deadline, p));
  }
  return t;
}

}  // namespace u5g
