// Quickstart: the library in ~60 lines.
//
// 1. Pick a duplex configuration (here: the paper's only viable minimal TDD
//    configuration, DM at µ2).
// 2. Ask the analytic engine whether it meets the URLLC deadline.
// 3. Trace one ping round trip, step by step.
// 4. Run the full event-driven system and compare.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/e2e_system.hpp"
#include "core/journey.hpp"
#include "core/latency_model.hpp"
#include "tdd/common_config.hpp"

using namespace u5g;
using namespace u5g::literals;

int main() {
  // --- 1. A duplex configuration ------------------------------------------
  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  std::printf("configuration: %s\n", dm.name().c_str());
  std::printf("slot map:      %s\n\n", dm.render_period().c_str());

  // --- 2. Analytic worst case vs the 0.5 ms URLLC deadline ----------------
  for (AccessMode m : {AccessMode::GrantFreeUl, AccessMode::GrantBasedUl, AccessMode::Downlink}) {
    const WorstCaseResult wc = analyze_worst_case(dm, m, {});
    std::printf("%-14s worst %.3f ms -> %s\n", to_string(m), wc.worst.ms(),
                wc.worst <= kUrllcOneWayDeadline ? "meets 0.5 ms" : "VIOLATES 0.5 ms");
  }

  // --- 3. One ping, decomposed --------------------------------------------
  JourneyParams jp;
  jp.grant_free = true;
  const PingJourney ping = trace_ping(dm, dm.period() * 8 + 100_us, jp);
  std::printf("\nping round trip (grant-free): %.3f ms\n", ping.rtt.ms());
  for (LatencyCategory c :
       {LatencyCategory::Protocol, LatencyCategory::Processing, LatencyCategory::Radio}) {
    std::printf("  %-11s %.3f ms\n", to_string(c), ping.category_total(c).ms());
  }

  // --- 4. The full event-driven system ------------------------------------
  E2eSystem sys(StackConfig::urllc_design(/*seed=*/1));
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    sys.send_uplink_at(1_ms * (2 * i) + Nanos{static_cast<std::int64_t>(rng.uniform() * 5e5)});
    sys.send_downlink_at(1_ms * (2 * i + 1) +
                         Nanos{static_cast<std::int64_t>(rng.uniform() * 5e5)});
  }
  sys.run_until(1_ms * 450);
  auto ul = sys.latency_samples_us(Direction::Uplink);
  auto dl = sys.latency_samples_us(Direction::Downlink);
  std::printf("\nsimulated URLLC design point (DM, grant-free, PCIe radio, RT kernel):\n");
  std::printf("  UL: mean %.0f us, p99 %.0f us (%zu packets)\n", ul.mean(), ul.quantile(0.99),
              ul.count());
  std::printf("  DL: mean %.0f us, p99 %.0f us (%zu packets)\n", dl.mean(), dl.quantile(0.99),
              dl.count());
  return 0;
}
