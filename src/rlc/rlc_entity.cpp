#include "rlc/rlc_entity.hpp"

#include <algorithm>

namespace u5g {

// ---------------------------------------------------------------------------
// RlcTx

void RlcTx::enqueue(ByteBuffer&& sdu, Nanos now) {
  queue_.push_back(QueuedSdu{std::move(sdu), now, 0});
}

std::size_t RlcTx::queued_bytes() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) n += queue_[i].sdu.size() - queue_[i].offset;
  return n;
}

std::optional<Nanos> RlcTx::head_enqueued_at() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front().enqueued_at;
}

std::optional<RlcTxPdu> RlcTx::pull(std::size_t max_bytes) {
  // AM retransmissions first: they already carry their headers.
  while (mode_ == RlcMode::AM && !retx_.empty()) {
    const SnSo key = retx_.front();
    const auto it = sent_.find(key);
    if (it == sent_.end()) {  // ACKed while queued for retx
      retx_.pop_front();
      continue;
    }
    if (it->second.pdu.size() > max_bytes) return std::nullopt;  // doesn't fit this grant
    retx_.pop_front();
    ByteBuffer copy = it->second.pdu;  // keep the buffered copy until ACKed
    return RlcTxPdu{std::move(copy), it->second.sdu_enqueued_at, key.first, true};
  }

  if (queue_.empty()) return std::nullopt;
  if (max_bytes < kMaxRlcHeader + 1) return std::nullopt;

  QueuedSdu& head = queue_.front();
  const std::size_t remaining = head.sdu.size() - head.offset;
  const bool is_first_piece = head.offset == 0;

  RlcHeader h;
  h.sn = next_sn_;
  h.so = static_cast<std::uint16_t>(head.offset);

  std::size_t payload;
  bool sdu_finished;
  // Fits completely (with the 2-byte no-SO header)?
  if (is_first_piece && remaining + 2 <= max_bytes) {
    h.si = SegmentInfo::Complete;
    payload = remaining;
    sdu_finished = true;
  } else {
    h.si = is_first_piece ? SegmentInfo::First
                          : (remaining + h.encoded_size() <= max_bytes ? SegmentInfo::Last
                                                                       : SegmentInfo::Middle);
    // Recompute: First has no SO (2 bytes), Middle/Last have SO (4 bytes).
    const std::size_t hdr = (h.si == SegmentInfo::First) ? 2u : 4u;
    payload = std::min(remaining, max_bytes - hdr);
    sdu_finished = payload == remaining && h.si != SegmentInfo::First;
    if (h.si == SegmentInfo::Last && !sdu_finished) h.si = SegmentInfo::Middle;
  }

  if (mode_ == RlcMode::AM) {
    ++pdus_since_poll_;
    if (pdus_since_poll_ >= poll_every_ || (sdu_finished && queue_.size() == 1)) {
      h.poll = true;
      pdus_since_poll_ = 0;
    }
  }

  const Nanos enq = head.enqueued_at;
  ByteBuffer pdu;
  if (h.si == SegmentInfo::Complete) {
    // Complete SDU: move the queued buffer out and prepend the header into
    // its headroom. The payload copy (and its pool round-trip) only ever
    // paid for segmentation, which a Complete PDU does not need.
    pdu = std::move(head.sdu);
    h.encode(pdu);
    queue_.pop_front();
  } else {
    pdu = ByteBuffer::uninitialized(payload);
    const auto src = head.sdu.bytes().subspan(head.offset, payload);
    std::copy(src.begin(), src.end(), pdu.bytes().begin());
    h.encode(pdu);
    head.offset += payload;
    if (head.offset >= head.sdu.size()) queue_.pop_front();
  }

  const std::uint16_t sn = next_sn_;
  // TM reuses SN 0; UM/AM advance per SDU completion (segments share the SN).
  if (mode_ != RlcMode::TM && sdu_finished) next_sn_ = static_cast<std::uint16_t>((next_sn_ + 1) & 0x0FFF);

  if (mode_ == RlcMode::AM) {
    // Keyed by (SN, SO): every segment of an SDU is retransmittable.
    sent_.insert_or_assign(SnSo{sn, h.so}, SentPdu{pdu, enq});
  }
  return RlcTxPdu{std::move(pdu), enq, sn, false};
}

void RlcTx::on_status(std::uint16_t ack_sn, const std::vector<std::uint16_t>& nack_sns) {
  if (mode_ != RlcMode::AM) return;
  // Cumulative ACK: everything below ack_sn that is not NACKed is delivered.
  for (auto it = sent_.begin(); it != sent_.end();) {
    const bool below = it->first.first < ack_sn;
    const bool nacked = std::ranges::find(nack_sns, it->first.first) != nack_sns.end();
    if (below && !nacked) {
      it = sent_.erase(it);
    } else {
      ++it;
    }
  }
  // A NACKed SN re-queues every buffered segment of that SDU.
  for (std::uint16_t sn : nack_sns) {
    for (const auto& [key, pdu] : sent_) {
      if (key.first != sn) continue;
      if (std::ranges::find(retx_, key) == retx_.end()) retx_.push_back(key);
    }
  }
}

std::size_t RlcTx::retransmit_unacked() {
  if (mode_ != RlcMode::AM) return 0;
  std::size_t queued = 0;
  for (const auto& [key, pdu] : sent_) {
    if (std::ranges::find(retx_, key) == retx_.end()) {
      retx_.push_back(key);
      ++queued;
    }
  }
  return queued;
}

// ---------------------------------------------------------------------------
// RlcRx

std::optional<RlcHeader> RlcRx::receive(ByteBuffer&& pdu, Deliver deliver) {
  auto h = RlcHeader::decode(pdu);
  if (!h) return std::nullopt;

  if (!any_seen_ || h->sn > highest_sn_seen_) {
    highest_sn_seen_ = h->sn;
    any_seen_ = true;
  }

  if (h->si == SegmentInfo::Complete) {
    if (mode_ == RlcMode::AM) received_[h->sn] = true;
    PacketMeta meta;
    meta.sn = h->sn;
    deliver(std::move(pdu), meta);
    return h;
  }

  // Segment path: stash by offset, reassemble when last seen and contiguous.
  Partial& part = partial_[h->sn];
  const std::uint16_t so = h->si == SegmentInfo::First ? 0 : h->so;
  if (!part.segments.contains(so)) {
    part.total_bytes += pdu.size();
    if (h->si == SegmentInfo::Last) {
      part.have_last = true;
      part.last_end = so + pdu.size();
    }
    part.segments.emplace(so, std::move(pdu));
  }
  try_reassemble(h->sn, deliver);
  return h;
}

void RlcRx::try_reassemble(std::uint16_t sn, Deliver deliver) {
  const auto it = partial_.find(sn);
  if (it == partial_.end()) return;
  Partial& part = it->second;
  if (!part.have_last) return;

  // Contiguity check: offsets must tile [0, last_end).
  std::size_t expect = 0;
  for (const auto& [so, seg] : part.segments) {
    if (so != expect) return;
    expect += seg.size();
  }
  if (expect != part.last_end) return;

  ByteBuffer sdu = ByteBuffer::uninitialized(part.last_end);
  std::size_t off = 0;
  for (auto& [so, seg] : part.segments) {
    const auto b = seg.bytes();
    std::copy(b.begin(), b.end(), sdu.bytes().begin() + static_cast<std::ptrdiff_t>(off));
    off += b.size();
  }
  partial_.erase(it);
  if (mode_ == RlcMode::AM) received_[sn] = true;
  PacketMeta meta;
  meta.sn = sn;
  deliver(std::move(sdu), meta);
}

RlcRx::Status RlcRx::build_status() const {
  Status st;
  if (!any_seen_) return st;
  st.ack_sn = static_cast<std::uint16_t>(highest_sn_seen_ + 1);
  for (std::uint16_t sn = 0; sn <= highest_sn_seen_; ++sn) {
    if (!received_.contains(sn) || !received_.at(sn)) st.nacks.push_back(sn);
  }
  return st;
}

}  // namespace u5g
