#pragma once
// Four-step random access (TS 38.321 §5.1) over a duplex configuration.
//
// The paper's analysis assumes a CONNECTED UE; a UE that has slipped to
// IDLE/INACTIVE must first run RACH — msg1 (preamble on a PRACH occasion),
// msg2 (random access response on DL), msg3 (scheduled transmission),
// msg4 (contention resolution on DL) — before any URLLC packet can move.
// This module traces that timeline with the same opportunity machinery and
// quantifies why URLLC UEs must be *kept* connected (keep-alive traffic or
// RRC_INACTIVE with pre-configured grants).

#include <optional>

#include "core/latency_model.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

struct RachConfig {
  /// PRACH occasion spacing (prach-ConfigurationIndex: typically 10 ms; the
  /// occasion itself must land on UL symbols).
  Nanos prach_periodicity{10'000'000};
  int preamble_symbols = 2;      ///< short preamble formats
  Nanos gnb_detect{200'000};     ///< preamble detection + RAR scheduling
  Nanos ue_msg3_prep{500'000};   ///< UE processing between RAR and msg3
  int msg3_symbols = 2;
  Nanos gnb_resolve{150'000};    ///< contention resolution processing
  double collision_prob = 0.0;   ///< msg1 preamble collision (multi-UE)

  static RachConfig typical() { return {}; }
  /// Aggressive two-step-style timing floor (Rel-16 2-step RACH collapses
  /// msg1+msg3 and msg2+msg4; modelled as halved handshakes).
  static RachConfig two_step() {
    return {Nanos{10'000'000}, 2, Nanos{150'000}, Nanos::zero(), 0, Nanos{100'000}, 0.0};
  }
};

/// Trace the four-step procedure starting at `t` (UE decides to access).
/// Returns the full timeline (steps categorised like the §4 taxonomy).
/// `two_step` configs skip msg3/msg4 (folded into the first exchange).
[[nodiscard]] Timeline trace_random_access(const DuplexConfig& cfg, Nanos t,
                                           const RachConfig& rc = RachConfig::typical());

/// Worst case over arrival offsets within one PRACH period.
[[nodiscard]] WorstCaseResult analyze_rach_worst_case(const DuplexConfig& cfg,
                                                      const RachConfig& rc =
                                                          RachConfig::typical(),
                                                      int probes_per_period = 64);

}  // namespace u5g
