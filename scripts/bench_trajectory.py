#!/usr/bin/env python3
"""Per-commit performance trajectory for the repo's throughput benches.

The trajectory files (BENCH_datapath.json, BENCH_scaleout.json) hold one
entry per recorded commit, each embedding the raw --json output of the
bench at that commit. This script appends entries, renders the delta table
the ROADMAP asks for, and gates CI against regressions:

    bench_trajectory.py append --file BENCH_datapath.json --run out.json \
        [--commit SHA] [--label "short description"]
    bench_trajectory.py table  --file BENCH_datapath.json
    bench_trajectory.py check  --file BENCH_datapath.json --run out.json \
        [--tolerance 0.15]

`check` compares the headline metrics of a fresh run against the *latest*
committed entry and exits non-zero if any regresses by more than the
tolerance (default 15%, sized for shared-runner noise). Improvements and
new metrics never fail the check.

Headline metrics:
  datapath  - packets_per_sec per payload size (batched slot execution)
  scaleout  - 1-thread ue_packets_per_s and events_per_s
  citywide  - events_per_s / ue_pkt_per_s / ues_per_core of the largest
              cells x background-UEs row of the sweep
  serve     - sync and batched queries/s plus the analytic cache hit rate
              of the feasibility-query service
  coexistence - per-scenario delivered and within-deadline counts of the
              NR-U LBT access matrix (deterministic fixed-seed counts, so
              any drift is a behaviour change, not runner noise)
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def headline_metrics(run: dict) -> dict[str, float]:
    """Flatten a bench --json payload into {metric_name: value}."""
    out: dict[str, float] = {}
    bench = run.get("bench", "")
    if bench == "datapath":
        for row in run.get("full_stack", []):
            out[f"pkts_per_s_{row['payload_bytes']}B"] = row["packets_per_sec"]
    elif bench == "scaleout":
        for row in run.get("results", []):
            if row.get("threads") == 1:
                out["ue_packets_per_s_1t"] = row["ue_packets_per_s"]
                if "events_per_s" in row:
                    out["events_per_s_1t"] = row["events_per_s"]
    elif bench == "citywide":
        rows = run.get("results", [])
        if rows:
            top = max(rows, key=lambda r: r.get("total_bg_ues", 0))
            out["events_per_s"] = top["events_per_s"]
            out["ue_pkt_per_s"] = top["ue_pkt_per_s"]
            out["ues_per_core"] = top["ues_per_core"]
    elif bench == "coexistence":
        for row in run.get("access", []):
            # wifi_alone_* rows offer no NR-U traffic; nothing headline there.
            if row.get("offered", 0) <= 0:
                continue
            out[f"{row['scenario']}_delivered"] = row["delivered"]
            out[f"{row['scenario']}_within_deadline"] = row["within_deadline"]
    elif bench == "serve":
        out["queries_per_s"] = run["queries_per_s"]
        out["batch_queries_per_s"] = run["batch_queries_per_s"]
        # hit rate is a correctness-adjacent headline: a drop means the
        # canonical keys stopped deduplicating the sweep.
        out["analytic_hit_rate"] = run["analytic_hit_rate"]
    else:
        raise SystemExit(f"bench_trajectory: unknown bench kind {bench!r}")
    if not out:
        raise SystemExit("bench_trajectory: no headline metrics found in run JSON")
    return out


def git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def cmd_append(args) -> int:
    run = load(args.run)
    try:
        traj = load(args.file)
    except FileNotFoundError:
        traj = {"bench": run.get("bench", ""), "trajectory": []}
    entry = {
        "commit": args.commit or git_head(),
        "label": args.label or "",
        "run": run,
    }
    traj["trajectory"].append(entry)
    with open(args.file, "w") as f:
        json.dump(traj, f, indent=1)
        f.write("\n")
    print(f"appended {entry['commit']} to {args.file} "
          f"({len(traj['trajectory'])} entries)")
    return 0


def cmd_table(args) -> int:
    traj = load(args.file)
    entries = traj.get("trajectory", [])
    if not entries:
        print("(empty trajectory)")
        return 0
    metric_names: list[str] = []
    per_entry = []
    for e in entries:
        m = headline_metrics(e["run"])
        per_entry.append(m)
        for k in m:
            if k not in metric_names:
                metric_names.append(k)

    head = f"{'commit':>10} {'label':<28}" + "".join(f"{m:>22}" for m in metric_names)
    print(head)
    print("-" * len(head))
    prev: dict[str, float] = {}
    for e, m in zip(entries, per_entry):
        cells = []
        for name in metric_names:
            v = m.get(name)
            if v is None:
                cells.append(f"{'-':>22}")
                continue
            if name in prev and prev[name] > 0:
                delta = (v / prev[name] - 1.0) * 100.0
                cells.append(f"{v:>13.0f} ({delta:+6.1f}%)")
            else:
                cells.append(f"{v:>22.0f}")
        print(f"{e['commit']:>10} {e.get('label', ''):<28.28}" + "".join(cells))
        prev.update(m)
    return 0


def cmd_check(args) -> int:
    traj = load(args.file)
    entries = traj.get("trajectory", [])
    if not entries:
        print("bench_trajectory: empty trajectory, nothing to check against")
        return 1
    base = headline_metrics(entries[-1]["run"])
    cur = headline_metrics(load(args.run))
    failed = False
    for name, base_v in base.items():
        cur_v = cur.get(name)
        if cur_v is None:
            print(f"  {name}: MISSING from current run")
            failed = True
            continue
        ratio = cur_v / base_v if base_v > 0 else 1.0
        floor = 1.0 - args.tolerance
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"  {name}: {cur_v:.0f} vs baseline {base_v:.0f} "
              f"({(ratio - 1.0) * 100.0:+.1f}%) {status}")
        if ratio < floor:
            failed = True
    if failed:
        print(f"bench_trajectory: FAILED (tolerance {args.tolerance:.0%} "
              f"vs {entries[-1]['commit']})")
        return 1
    print(f"bench_trajectory: ok (vs {entries[-1]['commit']})")
    return 0


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="cmd", required=True)

    ap = sub.add_parser("append", help="append a bench run to the trajectory")
    ap.add_argument("--file", required=True, help="trajectory file (BENCH_*.json)")
    ap.add_argument("--run", required=True, help="bench --json output to record")
    ap.add_argument("--commit", default=None, help="commit id (default: git HEAD)")
    ap.add_argument("--label", default=None, help="short description of the commit")
    ap.set_defaults(fn=cmd_append)

    tp = sub.add_parser("table", help="print the per-commit delta table")
    tp.add_argument("--file", required=True)
    tp.set_defaults(fn=cmd_table)

    cp = sub.add_parser("check", help="fail if a fresh run regresses vs the latest entry")
    cp.add_argument("--file", required=True)
    cp.add_argument("--run", required=True)
    cp.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    cp.set_defaults(fn=cmd_check)

    args = p.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
