#pragma once
// Small-buffer-optimised, move-only callable used for simulator events.
//
// A Fig-6-scale run schedules hundreds of thousands of events whose closures
// capture one to three words (a `this`, a timestamp, a packet id). With
// `std::function` each of those costs a heap allocation; `Action` stores any
// nothrow-movable callable of up to `kInlineSize` bytes directly in the event
// slot and falls back to the heap only for oversized captures.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace u5g {

/// Type-erased `void()` callable with inline storage for small captures.
class Action {
 public:
  /// Inline capacity: twenty words — small lambda captures, a whole
  /// `std::function` handed down from legacy call sites, and datapath
  /// closures that carry a `ByteBuffer` (64 bytes) plus bookkeeping by
  /// value, so moving a packet across an event never heap-allocates.
  static constexpr std::size_t kInlineSize = 20 * sizeof(void*);

  Action() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Action(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace_impl(std::forward<F>(f));
  }

  /// Destroy any stored callable and construct `f` directly in the inline
  /// buffer. The simulator uses this to build event closures in their final
  /// resting slot, so scheduling never moves an `Action` at all.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    reset();
    emplace_impl(std::forward<F>(f));
  }

  Action(Action&& o) noexcept { move_from(o); }
  Action& operator=(Action&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;
  ~Action() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the stored callable (releases captured resources eagerly).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  ///< move to dst, destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool kFitsInline = sizeof(Fn) <= kInlineSize &&
                                      alignof(Fn) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Fn>;

  template <typename F>
  void emplace_impl(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kFitsInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      static constexpr Ops ops{
          [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
          [](void* src, void* dst) noexcept {
            Fn* s = std::launder(reinterpret_cast<Fn*>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
          },
          [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      static constexpr Ops ops{
          [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
          [](void* src, void* dst) noexcept {
            ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
          },
          [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); }};
      ops_ = &ops;
    }
  }

  void move_from(Action& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace u5g
