// Extension X4 (§9): the analytical multi-UE latency model, validated
// against the full event simulation. The paper poses "how to mathematically
// model the latency for multiple UEs" as an open problem; this bench runs
// the closed-form M/D/1-on-protocol-geometry model side by side with the
// simulator across UE counts and offered loads, fanning the (UEs, load)
// cases across the Monte-Carlo runner's pool with the legacy per-case seeds.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/multi_ue_model.hpp"
#include "sim/runner.hpp"
#include "tdd/common_config.hpp"
#include "tdd/opportunity.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

/// Simulation counterpart — the model's exact referent: Poisson arrivals
/// from N UEs into one FIFO, served one packet per UL window over the *real*
/// slot geometry (windows packed back-to-back, as the scheduler's booking
/// serialises them). No processing or radio terms: protocol + queueing only.
double simulate_mean_ul_us(const DuplexConfig& duplex, int n_ues, double per_ue_pps,
                           int tx_symbols, double horizon_s, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Nanos> arrivals;
  for (int ue = 0; ue < n_ues; ++ue) {
    double t = 0.0;
    while (true) {
      // Rng::exponential takes the MEAN (seconds here), so rate -> 1/rate.
      t += rng.exponential(1.0 / per_ue_pps);
      if (t >= horizon_s) break;
      arrivals.push_back(Nanos{static_cast<std::int64_t>(t * 1e9)});
    }
  }
  std::ranges::sort(arrivals);

  SampleSet lat;
  Nanos server_free = Nanos::zero();
  for (const Nanos a : arrivals) {
    const Nanos start_from = std::max(a, server_free);
    const auto w = next_ul_tx(duplex, start_from, tx_symbols);
    if (!w) break;
    lat.add((w->end - a).us());
    server_free = w->end;
  }
  return lat.mean();
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 4000;  // scales the simulated horizon (packets at 1000 pps)
  defaults.seed = 500;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);
  const double horizon_s = static_cast<double>(opt.packets) / 1000.0;

  std::printf("== X4: analytical multi-UE latency model vs simulation (DM, grant-free) ==\n\n");

  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const double capacity = ul_windows_per_second(dm, 2);
  std::printf("UL capacity at 2-symbol windows: %.0f windows/s\n\n", capacity);
  std::printf("   %4s %10s %6s | %12s %12s %10s | %12s | %7s\n", "UEs", "pps/UE", "rho",
              "proto[us]", "queue[us]", "model[us]", "sim[us]", "err");

  struct Case {
    int ues;
    double pps;
  };
  const Case cases[] = {{1, 200}, {2, 400}, {4, 400}, {8, 400}, {8, 800}, {12, 800}};

  struct Row {
    MultiUeModelResult model{};
    double sim = 0.0;
  };
  const auto rows = run_replications(
      static_cast<int>(std::size(cases)), opt.seed,
      [&](int i, std::uint64_t) {
        const Case& c = cases[static_cast<std::size_t>(i)];
        MultiUeModelInput in;
        in.num_ues = c.ues;
        in.per_ue_packets_per_second = c.pps;
        in.tx_symbols = 2;
        Row row;
        row.model = predict_multi_ue_latency(dm, in);
        row.sim = simulate_mean_ul_us(dm, c.ues, c.pps, 2, horizon_s,
                                      opt.seed + static_cast<std::uint64_t>(i));
        return row;
      },
      {opt.threads});

  bool all_close = true;
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const auto& [model, sim] = rows[i];
    if (!model.stable) {
      std::printf("   %4d %10.0f %6.2f | %12.1f %12s %10s | %12.1f | %7s\n", cases[i].ues,
                  cases[i].pps, model.utilisation, model.protocol_mean.us(), "-", "UNSTABLE",
                  sim, "-");
      continue;
    }
    const double model_us = model.total_mean.us();
    const double err = std::abs(model_us - sim) / sim;
    std::printf("   %4d %10.0f %6.2f | %12.1f %12.1f %10.1f | %12.1f | %6.1f%%\n",
                cases[i].ues, cases[i].pps, model.utilisation, model.protocol_mean.us(),
                model.queue_wait_mean.us(), model_us, sim, err * 100);
    // Accept 30 % at moderate load (the model ignores window-boundary
    // phase correlations the simulation has).
    if (model.utilisation < 0.85 && err > 0.30) all_close = false;
  }

  // Saturation is predicted, not silently mis-estimated.
  MultiUeModelInput sat;
  sat.num_ues = 64;
  sat.per_ue_packets_per_second = 2000;
  const auto overload = predict_multi_ue_latency(dm, sat);
  std::printf("\n64 UEs x 2000 pps: rho=%.2f -> %s\n", overload.utilisation,
              overload.stable ? "stable (unexpected!)" : "UNSTABLE, as the model flags");

  const bool ok = all_close && !overload.stable;
  std::printf("\nclosed-form model tracks the simulator below saturation: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
