// Reproduces Table 1: "Evaluation of the 0.5 ms latency requirement for all
// minimal TDD Common Configurations" — plus the Fig 1-style slot maps of each
// candidate configuration (machine-readable rendering of the schematic).
//
// Expected (paper):
//                    DU   DM   MU   Mini-slot  FDD
//   Grant-Based UL   x    x    x    ok         ok
//   Grant-Free  UL   ok   ok   ok   ok         ok
//   DL               x    ok   x    ok         ok

#include <cstdio>

#include "common/table.hpp"
#include "core/feasibility.hpp"

using namespace u5g;

namespace {

const char* paper_verdict(AccessMode m, const std::string& name) {
  const bool du = name.find("(DU)") != std::string::npos;
  const bool dm = name.find("(DM)") != std::string::npos;
  const bool mu = name.find("(MU)") != std::string::npos;
  const bool tdd_min = du || dm || mu;
  switch (m) {
    case AccessMode::GrantBasedUl: return tdd_min ? "x" : "ok";
    case AccessMode::GrantFreeUl: return "ok";
    case AccessMode::Downlink: return (du || mu) ? "x" : "ok";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("== Table 1: 0.5 ms one-way deadline, minimal configurations (u=2, 0.25 ms slots) ==\n\n");

  const Table1 table = build_table1();

  std::printf("-- Fig 1-style slot maps (one char per symbol, '|' separates slots) --\n");
  for (const FeasibilityColumn& col : table.columns) {
    std::printf("  %-22s %s%s\n", col.config_name.c_str(), col.period_render.c_str(),
                col.standards_caveat ? "   [!] below the standard's recommended mini-slot target"
                                     : "");
  }
  std::printf("\n");

  TextTable out({"access mode", "config", "worst [ms]", "best [ms]", "verdict", "paper"});
  bool all_match = true;
  for (AccessMode m : {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl, AccessMode::Downlink}) {
    for (const FeasibilityColumn& col : table.columns) {
      const FeasibilityCell& c = col.cell(m);
      const char* verdict = c.meets_deadline ? "ok" : "x";
      const char* paper = paper_verdict(m, col.config_name);
      all_match = all_match && std::string{verdict} == paper;
      out.add_row({to_string(m), col.config_name, fmt3(c.worst_case.worst.ms()),
                   fmt3(c.worst_case.best.ms()), verdict, paper});
    }
  }
  std::printf("%s\n", out.render().c_str());
  std::printf("reproduction %s the paper's Table 1\n", all_match ? "MATCHES" : "DIFFERS FROM");
  return all_match ? 0 : 1;
}
