#pragma once
// FaultInjector: the runtime of the scenario-scripted fault subsystem.
//
// Built once per E2eSystem (and therefore once per sharded cell) from
// `StackConfig::faults`. Each scenario owns an independent SplitMix64-seeded
// stream forked from a dedicated seeder — never from the main simulation
// stream — so configuring a fault cannot perturb any existing draw sequence,
// and an empty scenario list leaves the simulation bit-identical to a build
// without the subsystem.
//
// Query surface (all on the simulated clock, called in event order):
//   * channel_lost(now)      — Gilbert–Elliott loss draw (BurstLoss scenarios)
//   * processing_jitter(now) — extra OS-jitter per stack traversal (storms)
//   * bus_stall(now)         — added radio-bus transfer latency (stalls)
//   * upf_dropped(now) / upf_extra_delay(now) — core-network brown-outs
//
// Every injected event is tallied in `Counters`; core/e2e_system mirrors the
// tallies into `fault.*` MetricsRegistry counters and emits tracer spans so
// a Chrome trace shows which fault ate the budget.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "fault/scenario.hpp"

namespace u5g {

class FaultInjector {
 public:
  /// Injected-event tallies, one per fault effect.
  struct Counters {
    std::uint64_t burst_losses = 0;   ///< transmissions killed by a BurstLoss chain
    std::uint64_t storm_spikes = 0;   ///< traversals that drew positive storm jitter
    std::uint64_t bus_stalls = 0;     ///< radio transfers hit by a stall window
    std::uint64_t upf_drops = 0;      ///< packets dropped in a UPF outage
    std::uint64_t upf_delays = 0;     ///< packets delayed by a UPF outage
  };

  FaultInjector(const std::vector<FaultScenario>& scenarios, std::uint64_t seed) {
    // Dedicated seeder stream: fault streams are a function of (seed,
    // scenario index) only, independent of the main simulation Rng.
    Rng seeder(seed ^ kSeedSalt);
    sources_.reserve(scenarios.size());
    for (const FaultScenario& sc : scenarios) {
      Source src{sc, seeder.fork(), std::nullopt, std::nullopt};
      if (sc.kind == FaultKind::BurstLoss) {
        src.ge.emplace(sc.ge);
        has_burst_loss_ = true;
      } else if (sc.kind == FaultKind::OsJitterStorm) {
        src.storm.emplace(sc.storm, src.rng.fork());
      }
      sources_.push_back(std::move(src));
    }
  }

  [[nodiscard]] bool empty() const { return sources_.empty(); }

  /// True when any BurstLoss scenario is configured. The caller then routes
  /// *all* channel loss through `channel_lost` (the scenario replaces the
  /// i.i.d. `channel_loss` knob; i.i.d. is its degenerate single-state case).
  [[nodiscard]] bool models_channel_loss() const { return has_burst_loss_; }

  /// One transmission through every active BurstLoss chain. Chains step only
  /// while their window is active, so a window-gated burst leaves
  /// transmissions outside the window untouched (and loss-free).
  [[nodiscard]] bool channel_lost(Nanos now) {
    bool lost = false;
    for (Source& s : sources_) {
      if (!s.ge || !s.sc.window.active_at(now)) continue;
      if (s.ge->transmit_lost(s.rng)) lost = true;
    }
    if (lost) ++counters_.burst_losses;
    return lost;
  }

  /// Extra OS-scheduling jitter for one stack traversal starting at `now`:
  /// the sum of one draw from each active storm. Zero when no storm covers
  /// `now` (the common case — one window check per configured storm).
  [[nodiscard]] Nanos processing_jitter(Nanos now) {
    Nanos total{};
    for (Source& s : sources_) {
      if (!s.storm || !s.sc.window.active_at(now)) continue;
      total += s.storm->sample();
    }
    if (total > Nanos::zero()) ++counters_.storm_spikes;
    return total;
  }

  /// Added latency for one radio-bus transfer at `now` (sum of active
  /// stalls). Deterministic given `now` — stalls model a saturated bus, not
  /// a stochastic one; combine with an OsJitterStorm for noisy stalls.
  [[nodiscard]] Nanos bus_stall(Nanos now) {
    Nanos total{};
    for (const Source& s : sources_) {
      if (s.sc.kind != FaultKind::RadioBusStall || !s.sc.window.active_at(now)) continue;
      total += s.sc.bus_stall;
    }
    if (total > Nanos::zero()) ++counters_.bus_stalls;
    return total;
  }

  /// Per-packet drop draw against every active UPF outage.
  [[nodiscard]] bool upf_dropped(Nanos now) {
    bool dropped = false;
    for (Source& s : sources_) {
      if (s.sc.kind != FaultKind::UpfOutage || !s.sc.window.active_at(now)) continue;
      if (s.sc.upf_drop_prob > 0.0 && s.rng.bernoulli(s.sc.upf_drop_prob)) dropped = true;
    }
    if (dropped) ++counters_.upf_drops;
    return dropped;
  }

  /// Added forwarding latency from active UPF outages (for surviving packets).
  [[nodiscard]] Nanos upf_extra_delay(Nanos now) {
    Nanos total{};
    for (const Source& s : sources_) {
      if (s.sc.kind != FaultKind::UpfOutage || !s.sc.window.active_at(now)) continue;
      total += s.sc.upf_extra_delay;
    }
    if (total > Nanos::zero()) ++counters_.upf_delays;
    return total;
  }

  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  static constexpr std::uint64_t kSeedSalt = 0xfa01'75ee'd000'0001ULL;

  struct Source {
    FaultScenario sc;
    Rng rng;                             ///< scenario-owned stream (drop draws, GE)
    std::optional<GilbertElliott> ge;    ///< BurstLoss chain state
    std::optional<OsJitterModel> storm;  ///< OsJitterStorm sampler
  };

  std::vector<Source> sources_;
  Counters counters_{};
  bool has_burst_loss_ = false;
};

}  // namespace u5g
