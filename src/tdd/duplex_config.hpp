#pragma once
// Duplex configuration abstraction.
//
// Everything the paper's latency analysis needs to know about a 5G duplex
// configuration reduces to two questions at symbol granularity — "can this
// symbol carry downlink?" and "can this symbol carry uplink?" — plus the
// granularity at which scheduling/control decisions are made. TDD Common
// Configuration, Slot Format, Mini-Slot and FDD (§2, Fig 1) all implement
// this interface; the worst-case engine (src/core) and the MAC scheduler
// are written against it.

#include <cstdint>
#include <memory>
#include <string>

#include "common/hashing.hpp"
#include "common/time.hpp"
#include "phy/frame_structure.hpp"
#include "phy/numerology.hpp"

namespace u5g {

class DuplexConfig {
 public:
  virtual ~DuplexConfig() = default;

  [[nodiscard]] Numerology numerology() const { return num_; }
  [[nodiscard]] SlotClock clock() const { return SlotClock{num_}; }

  /// Can symbol `sym` of slot `slot` carry downlink transmissions?
  /// (FDD: every symbol; TDD: per the pattern; guard symbols: neither.)
  [[nodiscard]] virtual bool dl_capable(SlotIndex slot, int sym) const = 0;
  /// Can symbol `sym` of slot `slot` carry uplink transmissions?
  [[nodiscard]] virtual bool ul_capable(SlotIndex slot, int sym) const = 0;

  /// Period after which the direction map repeats, in slots (>= 1).
  [[nodiscard]] virtual int period_slots() const = 0;

  /// Scheduling / control granularity in symbols: control information goes
  /// out once per granule (§2: "the scheduling task is done just once per
  /// slot"), so data that misses a granule boundary waits for the next.
  /// 14 for slot-based configurations, smaller for Mini-Slot.
  [[nodiscard]] virtual int control_granularity_symbols() const { return kSymbolsPerSlot; }

  /// Symbols of DL control (PDCCH) at the start of each DL-capable granule.
  [[nodiscard]] virtual int control_symbols() const { return 1; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Direction map of one period rendered one char per symbol per slot
  /// ('D', 'U', 'X' for both-capable, '-' for guard), slots separated by '|'.
  /// Regenerates Fig 1's configuration schematics in machine-readable form.
  [[nodiscard]] std::string render_period() const;

  // -- Derived helpers ------------------------------------------------------

  [[nodiscard]] bool slot_has_dl(SlotIndex slot) const;
  [[nodiscard]] bool slot_has_ul(SlotIndex slot) const;
  /// Period of the direction map as a duration.
  [[nodiscard]] Nanos period() const {
    return num_.slot_duration() * period_slots();
  }

  // -- Value identity --------------------------------------------------------
  // Everything the latency analysis can observe about a duplex configuration
  // is its numerology, scheduling granularity, control overhead, and the
  // per-symbol direction map over one period. Two configs with identical
  // observables are interchangeable for every worst-case and simulation
  // result, whatever their concrete type or heap address — the canonical
  // identity the feasibility-query cache keys on. (`name()` is
  // presentational and deliberately not part of the identity.)

  /// Append this config's observable value identity to `words`.
  void append_value_words(CanonicalWords& words) const;
  /// Stable 64-bit fold of the value identity.
  [[nodiscard]] std::uint64_t value_hash() const;

 protected:
  explicit DuplexConfig(Numerology n) : num_(n) {}
  // Copy/move are protected: concrete configs are value types, but copying
  // through a base pointer (slicing) is prevented.
  DuplexConfig(const DuplexConfig&) = default;
  DuplexConfig& operator=(const DuplexConfig&) = default;

 private:
  Numerology num_;
};

/// Deep value equality over the observable identity (see append_value_words).
/// Exact — compares the full direction map, never just a hash.
[[nodiscard]] bool value_equal(const DuplexConfig& a, const DuplexConfig& b);

}  // namespace u5g
