#include "core/repetition.hpp"

namespace u5g {

std::optional<TxWindow> nth_ul_window(const DuplexConfig& cfg, Nanos t, int n_symbols, int k) {
  std::optional<TxWindow> w;
  Nanos from = t;
  for (int i = 0; i < k; ++i) {
    w = next_ul_tx(cfg, from, n_symbols);
    if (!w) return std::nullopt;
    from = w->end;
  }
  return w;
}

double residual_loss(const ReliabilitySchemeParams& p) {
  // P(all attempts fail): each attempt a fails with the soft-combined BLER
  // effective_bler(p, a), conditioned on the previous failures (which is how
  // the Monte-Carlo sampler draws them too). Both schemes share this figure:
  // repetition is HARQ with zero feedback delay, reliability-wise.
  double loss = 1.0;
  for (int attempt = 1; attempt <= p.max_attempts; ++attempt) {
    loss *= std::min(1.0, effective_bler(p.per_tx_bler, attempt, p.combining_factor));
  }
  return loss;
}

namespace {

/// Draw whether attempt `attempt` (1-based) fails, given all previous failed.
bool attempt_fails(const ReliabilitySchemeParams& p, int attempt, Rng& rng) {
  const double bler = std::min(1.0, effective_bler(p.per_tx_bler, attempt, p.combining_factor));
  return rng.bernoulli(bler);
}

}  // namespace

SchemeOutcome harq_outcome(const DuplexConfig& cfg, Nanos arrival,
                           const ReliabilitySchemeParams& p, Rng& rng) {
  SchemeOutcome out;
  Nanos t = arrival;
  for (int attempt = 1; attempt <= p.max_attempts; ++attempt) {
    const auto w = next_ul_tx(cfg, t, p.tx_symbols);
    if (!w) return out;
    out.attempts = attempt;
    if (!attempt_fails(p, attempt, rng)) {
      out.delivered = true;
      out.completion = w->end;
      return out;
    }
    // NACK arrives a feedback delay after the transmission ends; the next
    // attempt needs a fresh opportunity after that.
    t = w->end + p.harq_feedback_delay;
  }
  return out;
}

SchemeOutcome repetition_outcome(const DuplexConfig& cfg, Nanos arrival,
                                 const ReliabilitySchemeParams& p, Rng& rng) {
  SchemeOutcome out;
  Nanos from = arrival;
  for (int rep = 1; rep <= p.max_attempts; ++rep) {
    const auto w = next_ul_tx(cfg, from, p.tx_symbols);
    if (!w) return out;
    out.attempts = rep;
    if (!attempt_fails(p, rep, rng)) {
      out.delivered = true;
      out.completion = w->end;  // decoded at the first successful leg
      return out;
    }
    from = w->end;  // next leg immediately (blind repetition, no feedback)
  }
  return out;
}

}  // namespace u5g
