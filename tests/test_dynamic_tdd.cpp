// Dynamic slot-format policy, end to end: DL preemption's loss accounting
// (the PR-5 identity extended with punctured_retx), the puncture mechanics
// themselves, the disabled policy's bitwise invisibility, and the sharded
// engine's cross-link coupling under 1/2/8-worker determinism. Scenario
// idiom follows test_fault.cpp (sequential rounds, one SDU per TB) and
// test_sharded.cpp (bitwise merge comparisons).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/e2e_system.hpp"
#include "fault/gilbert_elliott.hpp"
#include "fault/scenario.hpp"
#include "sim/sharded.hpp"
#include "tdd/dynamic_format.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

/// Preemption scenario base: UE 0 is the URLLC bearer, UE 1 the eMBB one.
/// 236 payload bytes fill one 256-byte TB per SDU (see test_fault.cpp), so
/// TB-level outcomes map one-to-one onto packet-level accounting.
StackConfig preemption_config(std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_based(seed);
  cfg.num_ues = 2;
  cfg.payload_bytes = 236;
  cfg.dynamic_tdd.enabled = true;
  cfg.dynamic_tdd.preemption = true;
  return cfg;
}

/// One round: an eMBB DL SDU, then a URLLC DL SDU 0.6 ms later — inside the
/// eMBB TB's staging lead (testbed radio_lead = 0.5 ms), so the eMBB window
/// is registered but not yet on the air when the URLLC data arrives. Rounds
/// are 4 ms apart: each drains before the next, keeping HARQ recovery
/// ordered (the regime the accounting identity is defined over).
void send_preemption_rounds(E2eSystem& sys, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    const Nanos base = 4_ms * r;
    sys.send_downlink_at(base, 1);
    sys.send_downlink_at(base + Nanos{600'000}, 0);
  }
}

void expect_loss_identity(const E2eSystem& sys, std::uint64_t offered) {
  std::uint64_t delivered = 0;
  for (const PacketRecord& r : sys.records()) delivered += r.ok ? 1 : 0;
  EXPECT_EQ(delivered, sys.packets_delivered());
  EXPECT_EQ(offered, delivered + sys.harq_dropped_tbs() + sys.stranded_drops() +
                         sys.fault_counters().upf_drops)
      << "silent packet loss: some offered packet ended in no bucket";
}

}  // namespace

// ===========================================================================
// Loss accounting under the dynamic policy (PR-5 identity + punctured_retx)

TEST(DynamicTddAccountingTest, DlPreemptionKeepsIdentityExactly) {
  constexpr int kRounds = 60;
  E2eSystem sys(preemption_config(41));
  send_preemption_rounds(sys, kRounds);
  sys.run_until(4_ms * kRounds + 2000_ms);

  expect_loss_identity(sys, 2 * kRounds);
  // Punctured TBs re-enter HARQ — they are re-entries, never a terminal
  // bucket of their own, which is why the identity above stays exact.
  EXPECT_GT(sys.punctured_retx(), 0u);
  EXPECT_EQ(sys.stranded_drops(), 0u);
}

TEST(DynamicTddAccountingTest, DlPreemptionUnderBurstLossKeepsIdentity) {
  constexpr int kRounds = 60;
  StackConfig cfg = preemption_config(42);
  cfg.harq_max_tx = 2;
  cfg.faults = {
      FaultScenario::burst_loss(GilbertElliott::Params::matched_average(0.2, 6.0, 0.8))};
  E2eSystem sys(std::move(cfg));
  send_preemption_rounds(sys, kRounds);
  sys.run_until(4_ms * kRounds + 2000_ms);

  expect_loss_identity(sys, 2 * kRounds);
  EXPECT_GT(sys.punctured_retx(), 0u);
}

TEST(DynamicTddAccountingTest, UplinkGrantBasedWithPolicyUnderLoss) {
  StackConfig cfg = StackConfig::testbed_grant_based(43);
  cfg.payload_bytes = 236;
  cfg.channel_loss = 0.35;
  cfg.harq_max_tx = 2;
  cfg.dynamic_tdd.enabled = true;
  cfg.dynamic_tdd.preemption = true;
  constexpr int kPackets = 80;
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < kPackets; ++i) sys.send_uplink_at(2_ms * i + Nanos{100'000});
  sys.run_until(2_ms * kPackets + 2000_ms);

  expect_loss_identity(sys, kPackets);
  EXPECT_GT(sys.harq_dropped_tbs(), 0u);  // loss 0.35, budget 2: drops happen
  EXPECT_EQ(sys.punctured_retx(), 0u);    // preemption is a DL mechanism
}

TEST(DynamicTddAccountingTest, UplinkGrantFreeWithPolicyUnderLoss) {
  StackConfig cfg = StackConfig::testbed_grant_free(44);
  cfg.payload_bytes = 236;
  cfg.channel_loss = 0.35;
  cfg.harq_max_tx = 2;
  cfg.dynamic_tdd.enabled = true;
  cfg.dynamic_tdd.preemption = true;
  constexpr int kPackets = 80;
  E2eSystem sys(std::move(cfg));
  for (int i = 0; i < kPackets; ++i) sys.send_uplink_at(2_ms * i + Nanos{100'000});
  sys.run_until(2_ms * kPackets + 2000_ms);

  expect_loss_identity(sys, kPackets);
  EXPECT_GT(sys.harq_dropped_tbs(), 0u);
}

// ===========================================================================
// Puncture mechanics

TEST(DynamicTddPreemptionTest, UrllcStealsStagedEmbbWindows) {
  constexpr int kRounds = 40;
  const auto run = [](bool preemption) {
    StackConfig cfg = preemption_config(45);
    cfg.dynamic_tdd.preemption = preemption;
    E2eSystem sys(std::move(cfg));
    send_preemption_rounds(sys, kRounds);
    sys.run_until(4_ms * kRounds + 2000_ms);
    return sys.punctured_retx();
  };
  EXPECT_EQ(0u, run(false));
  EXPECT_GT(run(true), 0u);
}

TEST(DynamicTddPreemptionTest, StolenWindowsShortenUrllcLatency) {
  constexpr int kRounds = 40;
  const auto urllc_total = [](bool preemption) {
    StackConfig cfg = preemption_config(46);
    cfg.dynamic_tdd.preemption = preemption;
    E2eSystem sys(std::move(cfg));
    send_preemption_rounds(sys, kRounds);
    sys.run_until(4_ms * kRounds + 2000_ms);
    Nanos total = Nanos::zero();
    for (int r = 0; r < kRounds; ++r) {
      const PacketRecord& rec = sys.records()[static_cast<std::size_t>(2 * r + 1)];
      EXPECT_TRUE(rec.ok) << "URLLC packet " << r << " undelivered";
      total += rec.latency();
    }
    return total;
  };
  // Identical arrivals, identical jitter streams: the only difference is the
  // stolen air windows, which can only move URLLC deliveries earlier.
  EXPECT_LT(urllc_total(true), urllc_total(false));
}

// ===========================================================================
// Disabled policy: bitwise invisibility

TEST(DynamicTddBaselineTest, DisabledPolicyLeavesRunsBitIdentical) {
  // Non-default knobs behind enabled=false must not perturb anything: no
  // wrapper, no decision events, no extra RNG draws.
  StackConfig plain_cfg = StackConfig::testbed_grant_based(47);
  StackConfig knobs_cfg = StackConfig::testbed_grant_based(47);
  knobs_cfg.dynamic_tdd.enabled = false;
  knobs_cfg.dynamic_tdd.preemption = true;
  knobs_cfg.dynamic_tdd.hold_slots = 64;
  knobs_cfg.dynamic_tdd.xlink_ul_bler = 0.4;

  E2eSystem plain(plain_cfg);
  E2eSystem knobs(knobs_cfg);
  for (E2eSystem* sys : {&plain, &knobs}) {
    for (int i = 0; i < 12; ++i) {
      sys->send_uplink_at(2_ms * i + Nanos{50'000});
      sys->send_downlink_at(2_ms * i + Nanos{1'050'000});
    }
    sys->run_until(2_ms * 12 + 200_ms);
  }
  const auto& a = plain.records();
  const auto& b = knobs.records();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(plain.packets_delivered(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok) << "record " << i;
    EXPECT_EQ(a[i].delivered.count(), b[i].delivered.count()) << "record " << i;
  }
  EXPECT_EQ(plain.simulator().events_fired(), knobs.simulator().events_fired());
  EXPECT_EQ(knobs.dynamic_upgraded_slots(), 0u);
  EXPECT_EQ(knobs.punctured_retx(), 0u);
  EXPECT_EQ(knobs.crosslink_ul_losses(), 0u);
}

// ===========================================================================
// Sharded engine: cross-link coupling, determinism, 1-cell identity

namespace {

/// Traffic that keeps every cell's added-DL activity up (eMBB DL backlog),
/// stages puncture victims, and sends UL through the neighbours' activity.
void send_xlink_rounds(ShardedEngine& eng, int cells, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    const Nanos base = 2_ms * (2 * r + 1);
    for (int c = 0; c < cells; ++c) {
      for (int b = 0; b < 4; ++b) eng.send_downlink_at(base + Nanos{b}, c, 1);
      eng.send_downlink_at(base + Nanos{600'000}, c, 0);
      eng.send_uplink_at(base + 1_ms + Nanos{7}, c, 0);
    }
  }
}

StackConfig xlink_scenario(std::uint64_t seed) {
  StackConfig cfg = StackConfig::testbed_grant_based(seed);
  cfg.num_ues = 2;
  cfg.num_cells = 3;
  cfg.intercell_load_coupling = 0.5;
  cfg.payload_bytes = 236;
  cfg.dynamic_tdd.enabled = true;
  cfg.dynamic_tdd.preemption = true;
  cfg.dynamic_tdd.hold_slots = 16;
  cfg.dynamic_tdd.xlink_ul_bler = 0.4;
  return cfg;
}

}  // namespace

TEST(DynamicTddShardedTest, CrossLinkCouplingDeterministicAcrossWorkers) {
  constexpr int kRounds = 24;
  std::vector<double> baseline;
  std::uint64_t base_delivered = 0, base_upgraded = 0, base_xlink = 0, base_punct = 0;
  for (int threads : {1, 2, 8}) {
    StackConfig cfg = xlink_scenario(48);
    ShardedEngine eng(cfg, ShardedOptions{threads});
    send_xlink_rounds(eng, cfg.num_cells, kRounds);
    eng.run_until(2_ms * (2 * kRounds + 12));

    SampleSet merged = eng.latency_samples_us(Direction::Uplink);
    merged.merge(eng.latency_samples_us(Direction::Downlink));
    if (threads == 1) {
      baseline = merged.samples();
      base_delivered = eng.packets_delivered();
      base_upgraded = eng.dynamic_upgraded_slots();
      base_xlink = eng.crosslink_ul_losses();
      base_punct = eng.punctured_retx();
      // The scenario must actually exercise the new machinery.
      ASSERT_GT(base_delivered, 0u);
      EXPECT_GT(base_upgraded, 0u);
      EXPECT_GT(base_xlink, 0u);
      EXPECT_GT(base_punct, 0u);
      continue;
    }
    EXPECT_EQ(baseline, merged.samples()) << "threads=" << threads;
    EXPECT_EQ(base_delivered, eng.packets_delivered()) << "threads=" << threads;
    EXPECT_EQ(base_upgraded, eng.dynamic_upgraded_slots()) << "threads=" << threads;
    EXPECT_EQ(base_xlink, eng.crosslink_ul_losses()) << "threads=" << threads;
    EXPECT_EQ(base_punct, eng.punctured_retx()) << "threads=" << threads;
  }
}

TEST(DynamicTddShardedTest, SingleCellDynamicReproducesE2eSystemExactly) {
  // With one cell there is no neighbour: the sharded run, dynamic policy and
  // preemption included, must equal the plain E2eSystem bit for bit.
  StackConfig cfg = xlink_scenario(49);
  cfg.num_cells = 1;

  E2eSystem plain(cfg);
  ShardedEngine sharded(cfg, ShardedOptions{1});
  ASSERT_EQ(1, sharded.num_cells());
  constexpr int kRounds = 16;
  for (int r = 0; r < kRounds; ++r) {
    const Nanos base = 4_ms * r;
    plain.send_downlink_at(base, 1);
    plain.send_downlink_at(base + Nanos{600'000}, 0);
    sharded.send_downlink_at(base, 0, 1);
    sharded.send_downlink_at(base + Nanos{600'000}, 0, 0);
  }
  const Nanos horizon = 4_ms * kRounds + 200_ms;
  plain.run_until(horizon);
  sharded.run_until(horizon);

  const auto& a = plain.records();
  const auto& b = sharded.cell(0).system().records();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(plain.punctured_retx(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok) << "record " << i;
    EXPECT_EQ(a[i].delivered.count(), b[i].delivered.count()) << "record " << i;
  }
  EXPECT_EQ(plain.punctured_retx(), sharded.punctured_retx());
  EXPECT_EQ(plain.dynamic_upgraded_slots(), sharded.dynamic_upgraded_slots());
  EXPECT_EQ(plain.crosslink_ul_losses(), sharded.crosslink_ul_losses());
  EXPECT_EQ(sharded.crosslink_ul_losses(), 0u);  // no neighbour, no hazard
}
