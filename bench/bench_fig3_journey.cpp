// Reproduces Figs 2-3: the "journey of a ping request" — the numbered step
// sequence through both stacks and its decomposition into the paper's three
// latency categories (protocol / processing / radio), on a DDDU pattern as
// in Fig 3.
//
//   bench_fig3_journey [--trace FILE] [--metrics FILE]
//
// `--trace` exports the whole round trip as one Chrome trace_event waterfall
// row (load FILE in chrome://tracing or Perfetto to see Fig 3 interactively);
// `--metrics` writes the category decomposition as a metrics JSON.

#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/gantt.hpp"
#include "core/journey.hpp"
#include "tdd/common_config.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

using namespace u5g;

namespace {

/// Flatten the journey into contiguous TraceSpans on seq 0 (one waterfall
/// row): UL timeline steps, the three core/server hops, DL timeline steps.
std::vector<TraceSpan> journey_spans(const PingJourney& j) {
  std::vector<TraceSpan> spans;
  const auto add_steps = [&](const Timeline& t) {
    for (const TimelineStep& s : t.steps) {
      spans.push_back(TraceSpan{s.label, s.category, 0, s.start, s.end});
    }
  };
  add_steps(j.uplink);
  Nanos at = j.uplink.completion;
  const auto hop = [&](std::string_view name, LatencyCategory cat, Nanos d) {
    spans.push_back(TraceSpan{name, cat, 0, at, at + d});
    at += d;
  };
  hop("core network uplink (gNB -> UPF -> server)", LatencyCategory::Protocol, j.core_uplink);
  hop("server turnaround", LatencyCategory::Processing, j.turnaround);
  hop("core network downlink (server -> UPF -> gNB)", LatencyCategory::Protocol, j.core_downlink);
  add_steps(j.downlink);
  return spans;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv);
  std::printf("== Figs 2-3: journey of a ping request (DDDU pattern) ==\n\n");

  const TddCommonConfig dddu = TddCommonConfig::dddu(kMu1);
  std::printf("slot map: %s\n\n", dddu.render_period().c_str());

  JourneyParams p;
  // Realistic (non-idealised) stack costs so every category is visible.
  p.ran.sender_processing = Nanos{80'000};
  p.ran.receiver_processing = Nanos{120'000};
  p.ran.sr_decode = Nanos{45'000};
  p.ran.grant_decode = Nanos{150'000};
  p.ran.radio_tx = Nanos{60'000};
  p.ran.radio_rx = Nanos{70'000};
  p.grant_free = false;

  // A ping issued 0.1 ms into the pattern (mid first DL slot — it must wait).
  const PingJourney j = trace_ping(dddu, dddu.period() * 8 + Nanos{100'000}, p);
  std::printf("%s\n", j.render().c_str());

  std::printf("-- Fig 3 as a Gantt chart over the slot structure --\n%s\n",
              render_gantt(dddu, j).c_str());

  std::printf("category decomposition of the round trip (Fig 3 / §4):\n");
  Nanos total = Nanos::zero();
  for (LatencyCategory c :
       {LatencyCategory::Protocol, LatencyCategory::Processing, LatencyCategory::Radio}) {
    const Nanos t = j.category_total(c);
    total += t;
    std::printf("   %-11s %10.3f ms\n", to_string(c), t.ms());
  }
  std::printf("   %-11s %10.3f ms (rtt %.3f ms)\n", "sum", total.ms(), j.rtt.ms());

  // The paper's headline claim for §4: protocol latency dominates.
  const bool protocol_dominates =
      j.category_total(LatencyCategory::Protocol) > j.category_total(LatencyCategory::Processing) &&
      j.category_total(LatencyCategory::Protocol) > j.category_total(LatencyCategory::Radio);
  std::printf("\nprotocol latency is the largest category: %s (paper: \"the protocol latency is "
              "the most significant\")\n",
              protocol_dominates ? "YES" : "NO");

  if (opt.trace) {
    const std::vector<TraceSpan> spans = journey_spans(j);
    if (!write_chrome_trace(*opt.trace, spans, "bench_fig3_journey")) {
      std::fprintf(stderr, "bench_fig3_journey: cannot write %s\n", opt.trace->c_str());
      return 1;
    }
    std::printf("wrote %zu spans to %s (open in chrome://tracing)\n", spans.size(),
                opt.trace->c_str());
  }
  if (opt.metrics) {
    MetricsRegistry m;
    m.counter("journey.rtt_ns").set(static_cast<std::uint64_t>(j.rtt.count()));
    for (LatencyCategory c :
         {LatencyCategory::Protocol, LatencyCategory::Processing, LatencyCategory::Radio}) {
      m.counter(std::string("journey.") + to_string(c) + "_ns")
          .set(static_cast<std::uint64_t>(j.category_total(c).count()));
    }
    if (!m.write_json(*opt.metrics)) {
      std::fprintf(stderr, "bench_fig3_journey: cannot write %s\n", opt.metrics->c_str());
      return 1;
    }
  }
  return protocol_dominates ? 0 : 1;
}
