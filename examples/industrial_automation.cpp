// Example: industrial automation — the motivating URLLC workload the paper's
// introduction cites ([13], [16]) and the reason private 5G matters (§2).
//
// A factory controller closes a control loop over 5G: each cycle the PLC
// sends a command downlink to an actuator UE and the UE reports its sensor
// state uplink. The loop breaks if either direction misses its deadline.
// We compare the paper's testbed configuration against its proposed URLLC
// design point and report deadline-miss statistics per configuration.

#include <cstdio>

#include "core/e2e_system.hpp"
#include "core/reliability.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr int kCycles = 1000;

struct LoopStats {
  double ul_p99_us;
  double dl_p99_us;
  double ul_reliability;
  double dl_reliability;
};

LoopStats run_control_loop(StackConfig cfg, Nanos cycle, Nanos deadline) {
  E2eSystem sys(std::move(cfg));
  // Periodic control traffic: command down at the cycle start, sensor report
  // up half a cycle later.
  for (int i = 0; i < kCycles; ++i) {
    sys.send_downlink_at(cycle * i);
    sys.send_uplink_at(cycle * i + cycle / 2);
  }
  sys.run_until(cycle * (kCycles + 50));

  auto ul = sys.latency_samples_us(Direction::Uplink);
  auto dl = sys.latency_samples_us(Direction::Downlink);
  return {ul.quantile(0.99), dl.quantile(0.99),
          evaluate_reliability(ul, kCycles, deadline).fraction_within,
          evaluate_reliability(dl, kCycles, deadline).fraction_within};
}

}  // namespace

int main() {
  std::printf("== Industrial automation: 1 kHz-class control loop over private 5G ==\n\n");
  const Nanos cycle = 10_ms;      // 100 Hz control loop
  const Nanos deadline = 2_ms;    // actuation budget per direction

  std::printf("cycle %.1f ms, per-direction deadline %.1f ms, %d cycles\n\n", cycle.ms(),
              deadline.ms(), kCycles);
  std::printf("   %-28s %10s %10s %14s %14s\n", "configuration", "UL p99", "DL p99",
              "UL in-deadline", "DL in-deadline");

  const LoopStats testbed = run_control_loop(StackConfig::testbed_grant_based(5), cycle,
                                             deadline);
  std::printf("   %-28s %8.0fus %8.0fus %13.2f%% %13.2f%%\n",
              "testbed (DDDU, USB2, SR/grant)", testbed.ul_p99_us, testbed.dl_p99_us,
              testbed.ul_reliability * 100, testbed.dl_reliability * 100);

  const LoopStats gf = run_control_loop(StackConfig::testbed_grant_free(6), cycle,
                                        deadline);
  std::printf("   %-28s %8.0fus %8.0fus %13.2f%% %13.2f%%\n", "testbed + grant-free UL",
              gf.ul_p99_us, gf.dl_p99_us, gf.ul_reliability * 100, gf.dl_reliability * 100);

  const LoopStats urllc = run_control_loop(StackConfig::urllc_design(7), cycle, deadline);
  std::printf("   %-28s %8.0fus %8.0fus %13.2f%% %13.2f%%\n",
              "URLLC design (DM, PCIe, CG)", urllc.ul_p99_us, urllc.dl_p99_us,
              urllc.ul_reliability * 100, urllc.dl_reliability * 100);

  std::printf("\ntakeaway: the same software stack spans 'control loop broken' to 'URLLC-grade'\n"
              "purely through the paper's §5 design choices (pattern, access mode, radio, lead).\n");
  return 0;
}
