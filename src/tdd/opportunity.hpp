#pragma once
// Transmission-opportunity queries over a DuplexConfig.
//
// These primitives encode the protocol-latency semantics of §4/§5:
//
//  * UL transmissions (SR or data on pre-allocated/granted resources) may
//    start at any *symbol* boundary inside an uplink-capable region — the
//    paper's footnote 2: "any UE can send SR (one bit) at any time during
//    the UL slot".
//  * DL data and DL control ride *granules* (slots, or mini-slots for the
//    Mini-Slot configuration): control information goes out once per granule
//    (§2), so the gNB can only serve data in a granule whose start lies at
//    or after the moment the data is ready — a packet that misses a granule
//    boundary waits for the next one.
//
// Both the closed-form worst-case engine (src/core/latency_model) and the
// event-driven MAC are built on exactly these queries, which is what makes
// the analytic-vs-simulated agreement tests meaningful.

#include <optional>

#include "common/time.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// A transmission window: [start, end) on the air.
struct TxWindow {
  Nanos start;
  Nanos end;
  [[nodiscard]] Nanos duration() const { return end - start; }
};

/// Earliest window of `n_symbols` consecutive uplink-capable symbols whose
/// start is at or after `t`. Consecutive across slot boundaries counts
/// (symbol 13 of slot s abuts symbol 0 of slot s+1). Returns nullopt if no
/// such window begins within `search_limit` of `t`.
[[nodiscard]] std::optional<TxWindow> next_ul_tx(const DuplexConfig& cfg, Nanos t, int n_symbols,
                                                 Nanos search_limit = Nanos{40'000'000});

/// Earliest control transmission at or after `t`: the first granule boundary
/// >= t whose opening symbol is downlink-capable. The window covers the
/// control symbols (PDCCH); `end` is when a UE has received the control.
[[nodiscard]] std::optional<TxWindow> next_dl_control(const DuplexConfig& cfg, Nanos t,
                                                      Nanos search_limit = Nanos{40'000'000});

/// Earliest DL *data* service at or after `t`: the first granule boundary
/// >= t whose granule opens with a downlink-capable run longer than the
/// control overhead. `start` is the granule boundary (when the scheduling
/// decision takes effect); `end` is the end of that downlink run — the
/// worst-case completion of data served in the granule.
[[nodiscard]] std::optional<TxWindow> next_dl_data(const DuplexConfig& cfg, Nanos t,
                                                   Nanos search_limit = Nanos{40'000'000});

/// Next scheduler run at or after `t`: granule boundaries are where the
/// per-slot (or per-mini-slot) scheduling decision happens.
[[nodiscard]] Nanos next_scheduler_run(const DuplexConfig& cfg, Nanos t);

/// Start time of the granule boundary at or after `t`.
[[nodiscard]] Nanos next_granule_boundary(const DuplexConfig& cfg, Nanos t);

}  // namespace u5g
