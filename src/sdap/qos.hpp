#pragma once
// 5G QoS model: 5QI characteristics (TS 23.501 Table 5.7.4-1, URLLC-relevant
// subset). URLLC flows are the delay-critical GBR 5QIs (82-85) with packet
// delay budgets down to 5 ms end-to-end and loss targets to 1e-5 — the
// 99.999 % figure of the paper's abstract.

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/time.hpp"

namespace u5g {

enum class ResourceType { NonGBR, GBR, DelayCriticalGBR };

/// One 5QI row: identifier, resource type, delay budget, error rate target.
struct FiveQi {
  int value = 9;
  ResourceType resource = ResourceType::NonGBR;
  int priority = 90;
  Nanos packet_delay_budget{300'000'000};
  double packet_error_rate = 1e-6;
  std::string_view example_service;

  [[nodiscard]] bool delay_critical() const {
    return resource == ResourceType::DelayCriticalGBR;
  }
};

/// The subset of standardised 5QIs this library carries.
[[nodiscard]] std::span<const FiveQi> five_qi_table();

/// Look up a 5QI by value; nullopt when not carried.
[[nodiscard]] std::optional<FiveQi> find_five_qi(int value);

/// 5QI 85: the most aggressive URLLC row (electricity distribution /
/// industrial automation, 5 ms PDB, 1e-5 PER).
[[nodiscard]] FiveQi urllc_five_qi();

}  // namespace u5g
