// Reproduces Table 2: gNB layers' processing and queuing time on the §7
// testbed configuration. SDAP/PDCP/RLC/MAC/PHY are calibrated lognormal
// draws (moment-matched to the paper's measurements); RLC-q is NOT drawn —
// it emerges from the per-slot scheduler serving the DL RLC queue, and this
// bench verifies the emergent value lands near the paper's 484 µs.

// CLI: [--packets N] [--seed S] [--trace FILE] [--metrics FILE] — tracing
// flags flip StackConfig::trace on, so the same run that prints the table
// also dumps every packet's waterfall and the registry's histograms.

#include <cstdio>
#include <iterator>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/e2e_system.hpp"
#include "trace/chrome_trace.hpp"

using namespace u5g;
using namespace u5g::literals;

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 3000;
  defaults.seed = 7;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== Table 2: gNB per-layer processing and queuing time [us] ==\n\n");

  StackConfig cfg = StackConfig::testbed_grant_based(opt.seed);
  cfg.trace.enabled = opt.trace.has_value() || opt.metrics.has_value();
  cfg.trace.spans = opt.trace.has_value();
  cfg.trace.metrics = opt.metrics.has_value();
  E2eSystem sys(cfg);
  const Nanos period = 2_ms;
  Rng rng(99);
  const int kPackets = opt.packets > 0 ? opt.packets : 3000;
  for (int i = 0; i < kPackets; ++i) {
    const Nanos base = period * (2 * i);
    sys.send_uplink_at(base + Nanos{static_cast<std::int64_t>(
                                  rng.uniform() * static_cast<double>(period.count()))});
    sys.send_downlink_at(base + period +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
  }
  sys.run_until(period * (2 * kPackets + 20));

  struct Row {
    const char* name;
    RunningStats stats;
    double paper_mean;
    double paper_std;
  };
  const Row rows[] = {
      {"SDAP", sys.gnb_layer_stats_us(Layer::SDAP), 4.65, 6.71},
      {"PDCP", sys.gnb_layer_stats_us(Layer::PDCP), 8.29, 8.99},
      {"RLC", sys.gnb_layer_stats_us(Layer::RLC), 4.12, 8.37},
      {"RLC-q", sys.rlc_queue_stats_us(), 484.20, 89.46},
      {"MAC", sys.gnb_layer_stats_us(Layer::MAC), 55.21, 16.31},
      {"PHY", sys.gnb_layer_stats_us(Layer::PHY), 41.55, 10.83},
  };

  TextTable out({"layer", "mean [us]", "std [us]", "paper mean", "paper std", "n"});
  bool ok = true;
  for (const Row& r : rows) {
    out.add_row({r.name, fmt2(r.stats.mean()), fmt2(r.stats.stddev()), fmt2(r.paper_mean),
                 fmt2(r.paper_std), std::to_string(r.stats.count())});
    // Calibrated rows must land tight; the emergent RLC-q within ~35 %.
    const double tolerance = std::string{r.name} == "RLC-q" ? 0.35 : 0.15;
    if (r.stats.count() == 0 ||
        std::abs(r.stats.mean() - r.paper_mean) > tolerance * r.paper_mean) {
      ok = false;
    }
  }
  std::printf("%s\n", out.render().c_str());
  std::printf("note: RLC-q emerges from slot geometry + scheduler lead, not from a draw.\n");
  std::printf("reproduction %s Table 2 (calibrated rows within 15%%, RLC-q within 35%%)\n",
              ok ? "MATCHES" : "DIFFERS FROM");

  // Fixed-layout JSON (all numbers through fmt2): byte-stable for a given
  // build, diffed bit for bit by the golden-file regression test.
  if (opt.json) {
    std::FILE* f = std::fopen(opt.json->c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_table2: cannot write %s\n", opt.json->c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_table2\",\n  \"packets\": %d,\n  \"seed\": %llu,\n",
                 kPackets, static_cast<unsigned long long>(opt.seed));
    std::fprintf(f, "  \"layers\": [\n");
    for (std::size_t i = 0; i < std::size(rows); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"layer\": \"%s\", \"mean_us\": %s, \"std_us\": %s, \"n\": %llu, "
                   "\"paper_mean_us\": %s, \"paper_std_us\": %s}%s\n",
                   r.name, fmt2(r.stats.mean()).c_str(), fmt2(r.stats.stddev()).c_str(),
                   static_cast<unsigned long long>(r.stats.count()), fmt2(r.paper_mean).c_str(),
                   fmt2(r.paper_std).c_str(), i + 1 < std::size(rows) ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"matches_paper\": %s\n}\n", ok ? "true" : "false");
    std::fclose(f);
  }

  if (opt.trace && !write_chrome_trace(*opt.trace, sys.tracer().spans(), "bench_table2")) {
    std::fprintf(stderr, "bench_table2: cannot write %s\n", opt.trace->c_str());
    return 1;
  }
  if (opt.metrics) {
    sys.metrics().counter("sim.events_fired").set(sys.simulator().events_fired());
    if (!sys.metrics().write_json(*opt.metrics)) {
      std::fprintf(stderr, "bench_table2: cannot write %s\n", opt.metrics->c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
