#include "phy/modulation.hpp"

#include <array>

namespace u5g {

namespace {

// TS 38.214 Table 5.1.3.1-1 (PDSCH MCS index table 1, up to 64QAM).
constexpr std::array<McsEntry, 29> kMcsTable{{
    {0, Modulation::QPSK, 120},  {1, Modulation::QPSK, 157},  {2, Modulation::QPSK, 193},
    {3, Modulation::QPSK, 251},  {4, Modulation::QPSK, 308},  {5, Modulation::QPSK, 379},
    {6, Modulation::QPSK, 449},  {7, Modulation::QPSK, 526},  {8, Modulation::QPSK, 602},
    {9, Modulation::QPSK, 679},  {10, Modulation::QAM16, 340}, {11, Modulation::QAM16, 378},
    {12, Modulation::QAM16, 434}, {13, Modulation::QAM16, 490}, {14, Modulation::QAM16, 553},
    {15, Modulation::QAM16, 616}, {16, Modulation::QAM16, 658}, {17, Modulation::QAM64, 438},
    {18, Modulation::QAM64, 466}, {19, Modulation::QAM64, 517}, {20, Modulation::QAM64, 567},
    {21, Modulation::QAM64, 616}, {22, Modulation::QAM64, 666}, {23, Modulation::QAM64, 719},
    {24, Modulation::QAM64, 772}, {25, Modulation::QAM64, 822}, {26, Modulation::QAM64, 873},
    {27, Modulation::QAM64, 910}, {28, Modulation::QAM64, 948},
}};

}  // namespace

std::span<const McsEntry> mcs_table() { return kMcsTable; }

McsEntry mcs(int index) {
  if (index < 0 || index >= static_cast<int>(kMcsTable.size()))
    throw std::out_of_range{"mcs: index outside [0,28]"};
  return kMcsTable[static_cast<std::size_t>(index)];
}

McsEntry highest_mcs_below_rate(double max_rate) {
  McsEntry best = kMcsTable.front();
  for (const McsEntry& e : kMcsTable) {
    if (e.code_rate() < max_rate && e.bits_per_re() >= best.bits_per_re()) best = e;
  }
  return best;
}

}  // namespace u5g
