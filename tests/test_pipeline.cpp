// Tests for the layer-traversal helper (node/pipeline).

#include <gtest/gtest.h>

#include <vector>

#include "node/pipeline.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

TEST(PipelineTest, TraversesLayersInOrderWithDraws) {
  Simulator sim;
  ProcessingModel proc{ProcessingProfile::gnb_i7(), Rng{1}};
  std::vector<Layer> seen;
  Nanos total = Nanos::zero();
  Nanos done_at{-1};
  traverse_layers(
      sim, proc, {Layer::SDAP, Layer::PDCP, Layer::RLC},
      [&](Layer l, Nanos dt) {
        seen.push_back(l);
        total += dt;
        EXPECT_GT(dt, Nanos::zero());
      },
      [&](Nanos end) { done_at = end; });
  sim.run_until();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], Layer::SDAP);
  EXPECT_EQ(seen[1], Layer::PDCP);
  EXPECT_EQ(seen[2], Layer::RLC);
  // Completion time equals the sum of the sampled durations.
  EXPECT_EQ(done_at, total);
}

TEST(PipelineTest, EmptyLayerListCompletesImmediately) {
  Simulator sim;
  ProcessingModel proc{ProcessingProfile::gnb_i7(), Rng{2}};
  bool done = false;
  traverse_layers(sim, proc, {}, nullptr, [&](Nanos end) {
    done = true;
    EXPECT_EQ(end, Nanos::zero());
  });
  sim.run_until();
  EXPECT_TRUE(done);
}

TEST(PipelineTest, NullPerLayerCallbackIsSafe) {
  Simulator sim;
  ProcessingModel proc{ProcessingProfile::gnb_i7(), Rng{3}};
  bool done = false;
  traverse_layers(sim, proc, {Layer::MAC, Layer::PHY}, nullptr, [&](Nanos) { done = true; });
  sim.run_until();
  EXPECT_TRUE(done);
}

TEST(PipelineTest, ZeroProfileTakesZeroTime) {
  Simulator sim;
  ProcessingModel proc{ProcessingProfile::zero(), Rng{4}};
  Nanos done_at{-1};
  traverse_layers(sim, proc, {Layer::APP, Layer::SDAP, Layer::PDCP, Layer::RLC, Layer::MAC},
                  nullptr, [&](Nanos end) { done_at = end; });
  sim.run_until();
  EXPECT_EQ(done_at, Nanos::zero());
}

TEST(PipelineTest, ConcurrentTraversalsDoNotInterfere) {
  Simulator sim;
  ProcessingModel proc{ProcessingProfile::gnb_i7(), Rng{5}};
  int completions = 0;
  for (int i = 0; i < 10; ++i) {
    traverse_layers(sim, proc, {Layer::PHY, Layer::MAC}, nullptr,
                    [&](Nanos) { ++completions; });
  }
  sim.run_until();
  EXPECT_EQ(completions, 10);
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace u5g
