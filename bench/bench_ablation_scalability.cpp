// Ablation A6 (§5/§9): grant-free scalability. "Grant-free ... cannot scale
// to many UEs as these pre-allocated resources are limited and can be wasted
// if there are no uplink packets."
//
// Three views on the DM configuration:
//  1. Resource accounting: occasions a configured grant reserves per UE vs
//     the UL capacity of the pattern -> the max UE count and the wasted
//     fraction at a given traffic activity.
//  2. Contention (analytic): with N UEs sharing the UL symbols of each
//     period (occasions serialised), the extra worst-case wait.
//  3. Contention (simulated): the full multi-UE system under synchronised
//     bursts — per-UE mean/p99 uplink latency vs the number of UEs, for
//     grant-free and grant-based access. The eight (UE count x access mode)
//     simulations fan across the Monte-Carlo runner's pool.

#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/e2e_system.hpp"
#include "mac/configured_grant.hpp"
#include "sim/runner.hpp"
#include "tdd/common_config.hpp"
#include "tdd/opportunity.hpp"

using namespace u5g;
using namespace u5g::literals;

int main(int argc, char** argv) {
  BenchOptions defaults;
  defaults.packets = 60;  // synchronised bursts per simulated point
  defaults.seed = 70;
  const BenchOptions opt = parse_bench_options(argc, argv, defaults);

  std::printf("== Ablation A6: grant-free scalability on the DM configuration (u=2) ==\n\n");

  const TddCommonConfig dm = TddCommonConfig::dm(kMu2);
  const Numerology num = dm.numerology();

  // UL capacity: symbols per second the pattern offers.
  int ul_syms_per_period = 0;
  for (int s = 0; s < dm.period_slots(); ++s) {
    for (int k = 0; k < kSymbolsPerSlot; ++k) ul_syms_per_period += dm.ul_capable(s, k) ? 1 : 0;
  }
  const double periods_per_s = 1e9 / static_cast<double>(dm.period().count());
  const double ul_syms_per_s = ul_syms_per_period * periods_per_s;

  // Each UE's configured grant: one 2-symbol occasion per 0.5 ms period.
  const ConfiguredGrant cg{UeId{1}, ConfiguredGrantConfig::periodic(dm.period(), 128, 2)};
  const double occasions_per_s = cg.occasions_per_second(dm);
  const double syms_per_ue_per_s = occasions_per_s * 2.0;
  const int max_ues = static_cast<int>(ul_syms_per_s / syms_per_ue_per_s);

  std::printf("UL capacity: %d symbols/period = %.0f symbols/s\n", ul_syms_per_period,
              ul_syms_per_s);
  std::printf("per-UE configured grant: %.0f occasions/s (2 symbols each)\n", occasions_per_s);
  std::printf("=> hard ceiling: %d UEs before pre-allocations exhaust the UL symbols\n\n",
              max_ues);

  std::printf("-- waste: fraction of reserved symbols idle at traffic activity p --\n");
  std::printf("   %6s | %8s %8s %8s %8s\n", "UEs", "p=0.01", "p=0.1", "p=0.5", "p=1.0");
  for (int n : {1, 2, 4, 8, max_ues}) {
    const double reserved = std::min(1.0, n * syms_per_ue_per_s / ul_syms_per_s);
    std::printf("   %6d |", n);
    for (double p : {0.01, 0.1, 0.5, 1.0}) {
      std::printf(" %7.1f%%", reserved * (1.0 - p) * 100.0);
    }
    std::printf("\n");
  }

  // Contention view: N UEs' occasions serialised within each period's UL
  // region; UE k's occasion starts 2k symbols into the region, so its
  // protocol wait grows linearly until the region overflows into the next
  // period.
  std::printf("\n-- contention: added worst-case wait when N UEs share the UL region --\n");
  std::printf("   %6s %18s\n", "UEs", "extra wait [us]");
  const double sym_us = num.symbol_duration().us();
  bool grows = true;
  double prev = -1.0;
  for (int n : {1, 2, 3, 4}) {
    const int occasion_sym = 2 * (n - 1);
    double extra;
    if (occasion_sym + 2 <= ul_syms_per_period) {
      extra = occasion_sym * sym_us;
    } else {
      extra = dm.period().us();  // spilled into the next period
    }
    std::printf("   %6d %18.1f\n", n, extra);
    grows = grows && extra >= prev;
    prev = extra;
  }

  // Simulated contention: synchronised uplink bursts on the testbed config.
  // Fan the (UE count x access mode) grid across the pool; legacy per-point
  // seeds (70+n grant-free, 90+n grant-based by default).
  std::printf("\n-- simulated: per-UE uplink latency under synchronised bursts (testbed) --\n");
  std::printf("   %6s | %18s | %18s\n", "UEs", "grant-free", "grant-based");
  std::printf("   %6s | %8s %9s | %8s %9s\n", "", "mean[ms]", "p99[ms]", "mean[ms]", "p99[ms]");
  const auto simulate = [&](int n_ues, bool grant_free, std::uint64_t seed) {
    StackConfig cfg = grant_free ? StackConfig::testbed_grant_free(seed)
                                 : StackConfig::testbed_grant_based(seed);
    cfg.num_ues = n_ues;
    E2eSystem sys(std::move(cfg));
    const Nanos pattern = 2_ms;
    for (int i = 0; i < opt.packets; ++i) {
      for (int ue = 0; ue < n_ues; ++ue) {
        sys.send_uplink_at(pattern * (4 * i) + Nanos{100'000}, ue);
      }
    }
    sys.run_until(pattern * 4 * (opt.packets + 20));
    return sys.latency_samples_us(Direction::Uplink);
  };
  const int ue_counts[] = {1, 2, 4, 8};
  auto lats = run_replications(
      8, opt.seed,
      [&](int i, std::uint64_t) {
        const int n = ue_counts[i % 4];
        const bool grant_free = i < 4;
        const std::uint64_t seed = opt.seed + (grant_free ? 0 : 20) + static_cast<std::uint64_t>(n);
        return simulate(n, grant_free, seed);
      },
      {opt.threads});
  double gf1 = 0.0, gf8 = 0.0;
  for (int i = 0; i < 4; ++i) {
    const int n = ue_counts[i];
    auto& gf_lat = lats[static_cast<std::size_t>(i)];
    auto& gb_lat = lats[static_cast<std::size_t>(i + 4)];
    std::printf("   %6d | %8.3f %9.3f | %8.3f %9.3f\n", n, gf_lat.mean() / 1e3,
                gf_lat.quantile(0.99) / 1e3, gb_lat.mean() / 1e3, gb_lat.quantile(0.99) / 1e3);
    if (n == 1) gf1 = gf_lat.mean();
    if (n == 8) gf8 = gf_lat.mean();
  }

  const bool ok = max_ues <= 8 && grows && gf8 > gf1;
  std::printf("\npre-allocation exhausts quickly and contention grows with UEs: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  std::printf("(the paper's §9 open problem: grant-free does not scale)\n");
  return ok ? 0 : 1;
}
