#include "tdd/slot_format.hpp"

#include <algorithm>

namespace u5g {

namespace {

/// Builds a format from a 14-char {D,U,F} string.
constexpr SlotFormat make_format(int index, const char (&s)[kSymbolsPerSlot + 1]) {
  SlotFormat f{};
  f.index = index;
  for (int i = 0; i < kSymbolsPerSlot; ++i) {
    f.symbols[static_cast<std::size_t>(i)] =
        s[i] == 'D' ? SymbolKind::Downlink : s[i] == 'U' ? SymbolKind::Uplink : SymbolKind::Flexible;
  }
  return f;
}

// TS 38.213 Table 11.1.1-1, formats 0-45.
constexpr std::array<SlotFormat, 46> kFormats{{
    make_format(0, "DDDDDDDDDDDDDD"),
    make_format(1, "UUUUUUUUUUUUUU"),
    make_format(2, "FFFFFFFFFFFFFF"),
    make_format(3, "DDDDDDDDDDDDDF"),
    make_format(4, "DDDDDDDDDDDDFF"),
    make_format(5, "DDDDDDDDDDDFFF"),
    make_format(6, "DDDDDDDDDDFFFF"),
    make_format(7, "DDDDDDDDDFFFFF"),
    make_format(8, "FFFFFFFFFFFFFU"),
    make_format(9, "FFFFFFFFFFFFUU"),
    make_format(10, "FUUUUUUUUUUUUU"),
    make_format(11, "FFUUUUUUUUUUUU"),
    make_format(12, "FFFUUUUUUUUUUU"),
    make_format(13, "FFFFUUUUUUUUUU"),
    make_format(14, "FFFFFUUUUUUUUU"),
    make_format(15, "FFFFFFUUUUUUUU"),
    make_format(16, "DFFFFFFFFFFFFF"),
    make_format(17, "DDFFFFFFFFFFFF"),
    make_format(18, "DDDFFFFFFFFFFF"),
    make_format(19, "DFFFFFFFFFFFFU"),
    make_format(20, "DDFFFFFFFFFFFU"),
    make_format(21, "DDDFFFFFFFFFFU"),
    make_format(22, "DFFFFFFFFFFFUU"),
    make_format(23, "DDFFFFFFFFFFUU"),
    make_format(24, "DDDFFFFFFFFFUU"),
    make_format(25, "DFFFFFFFFFFUUU"),
    make_format(26, "DDFFFFFFFFFUUU"),
    make_format(27, "DDDFFFFFFFFUUU"),
    make_format(28, "DDDDDDDDDDDDFU"),
    make_format(29, "DDDDDDDDDDDFFU"),
    make_format(30, "DDDDDDDDDDFFFU"),
    make_format(31, "DDDDDDDDDDDFUU"),
    make_format(32, "DDDDDDDDDDFFUU"),
    make_format(33, "DDDDDDDDDFFFUU"),
    make_format(34, "DFUUUUUUUUUUUU"),
    make_format(35, "DDFUUUUUUUUUUU"),
    make_format(36, "DDDFUUUUUUUUUU"),
    make_format(37, "DFFUUUUUUUUUUU"),
    make_format(38, "DDFFUUUUUUUUUU"),
    make_format(39, "DDDFFUUUUUUUUU"),
    make_format(40, "DFFFUUUUUUUUUU"),
    make_format(41, "DDFFFUUUUUUUUU"),
    make_format(42, "DDDFFFUUUUUUUU"),
    make_format(43, "DDDDDDDDDFFFFU"),
    make_format(44, "DDDDDDFFFFFFUU"),
    make_format(45, "DDDDDDFFUUUUUU"),
}};

}  // namespace

bool SlotFormat::has_dl() const {
  return std::ranges::any_of(symbols, [](SymbolKind k) { return k == SymbolKind::Downlink; });
}

bool SlotFormat::has_ul() const {
  return std::ranges::any_of(symbols, [](SymbolKind k) { return k == SymbolKind::Uplink; });
}

std::string SlotFormat::render() const {
  std::string s;
  for (SymbolKind k : symbols)
    s += k == SymbolKind::Downlink ? 'D' : k == SymbolKind::Uplink ? 'U' : 'F';
  return s;
}

std::span<const SlotFormat> slot_format_table() { return kFormats; }

const SlotFormat& slot_format(int index) {
  if (index < 0 || index >= static_cast<int>(kFormats.size()))
    throw std::out_of_range{"slot_format: index outside the carried table (0-45)"};
  return kFormats[static_cast<std::size_t>(index)];
}

SlotFormatConfig::SlotFormatConfig(Numerology num, std::vector<int> format_indices)
    : DuplexConfig(num), indices_(std::move(format_indices)) {
  if (indices_.empty()) throw std::invalid_argument{"SlotFormatConfig: empty format sequence"};
  formats_.reserve(indices_.size());
  for (int idx : indices_) formats_.push_back(&slot_format(idx));
}

const SlotFormat& SlotFormatConfig::format_of_slot(SlotIndex slot) const {
  std::int64_t i = slot % static_cast<std::int64_t>(formats_.size());
  if (i < 0) i += static_cast<std::int64_t>(formats_.size());
  return *formats_[static_cast<std::size_t>(i)];
}

bool SlotFormatConfig::dl_capable(SlotIndex slot, int sym) const {
  return format_of_slot(slot).symbols[static_cast<std::size_t>(sym)] == SymbolKind::Downlink;
}

bool SlotFormatConfig::ul_capable(SlotIndex slot, int sym) const {
  return format_of_slot(slot).symbols[static_cast<std::size_t>(sym)] == SymbolKind::Uplink;
}

std::string SlotFormatConfig::name() const {
  std::string n = "SlotFormat(";
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (i != 0) n += ',';
    n += std::to_string(indices_[i]);
  }
  return n + ")";
}

}  // namespace u5g
