#include "mac/configured_grant.hpp"

#include <algorithm>

namespace u5g {

double ConfiguredGrant::occasions_per_second(const DuplexConfig& duplex) const {
  // Count occasions in one duplex period (or one configured period, whichever
  // is longer) and scale.
  const Nanos span = std::max(duplex.period(), cfg_.periodicity * 2);
  int count = 0;
  Nanos t = Nanos::zero();
  while (t < span) {
    const auto g = next_occasion(duplex, t);
    if (!g || g->tx_start >= span) break;
    ++count;
    t = g->tx_start + Nanos{1};
    if (cfg_.periodicity <= Nanos::zero()) {
      // Symbol-dense occasions: advance a full symbol to count distinct starts.
      t = g->tx_start + duplex.numerology().symbol_duration();
    }
  }
  return count * (1e9 / static_cast<double>(span.count()));
}

}  // namespace u5g
