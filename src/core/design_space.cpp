#include "core/design_space.hpp"

#include "serve/feasibility_service.hpp"
#include "tdd/common_config.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"

namespace u5g {

namespace {

/// All minimal-pattern TDD candidates plus mini-slot and FDD at µ.
std::vector<std::shared_ptr<const DuplexConfig>> candidates_at(Numerology num) {
  std::vector<std::shared_ptr<const DuplexConfig>> v;
  // The minimal 0.5 ms TDD period only exists where it is an integer number
  // of slots >= 2 (µ >= 1; at µ1 the 0.5 ms period is a single slot, which
  // cannot hold a D and a U part as separate slots — only the mixed forms).
  const int slots_in_half_ms = static_cast<int>(Nanos{500'000} / num.slot_duration());
  if (slots_in_half_ms >= 2) {
    v.push_back(std::make_shared<TddCommonConfig>(TddCommonConfig::du(num)));
    v.push_back(std::make_shared<TddCommonConfig>(TddCommonConfig::dm(num)));
    v.push_back(std::make_shared<TddCommonConfig>(TddCommonConfig::mu(num)));
  }
  v.push_back(std::make_shared<MiniSlotConfig>(num, 2));
  v.push_back(std::make_shared<FddConfig>(num));
  return v;
}

}  // namespace

std::vector<DesignPoint> explore_design_space(const DesignSpaceOptions& opt) {
  std::vector<Numerology> nums;
  if (opt.fr1_only) {
    for (Numerology n : numerologies_in_fr1()) nums.push_back(n);
  } else {
    for (int mu = 0; mu <= 6; ++mu) nums.push_back(Numerology{mu});
  }

  // One service batch for the whole space: per candidate, one Downlink query
  // (shared by both UL points) plus the two uplink modes. The batch comes
  // back in request order, so assembly below reproduces the historical
  // serial loop's point order exactly — numerology, then candidate, then
  // GrantFreeUl before GrantBasedUl.
  struct Slot {
    std::shared_ptr<const DuplexConfig> cfg;
    Numerology num;
  };
  std::vector<Slot> slots;
  QueryBatch batch;
  for (Numerology num : nums) {
    for (auto& cfg : candidates_at(num)) {
      for (AccessMode m :
           {AccessMode::Downlink, AccessMode::GrantFreeUl, AccessMode::GrantBasedUl}) {
        batch.push_back(FeasibilityQuery::analytic(cfg, m, opt.deadline, opt.model));
      }
      slots.push_back({std::move(cfg), num});
    }
  }
  const std::vector<FeasibilityVerdict> verdicts = FeasibilityService::shared().query_batch(batch);

  std::vector<DesignPoint> out;
  out.reserve(slots.size() * 2);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const Slot& slot = slots[i];
    const FeasibilityVerdict& dl = verdicts[3 * i];
    for (std::size_t ul = 0; ul < 2; ++ul) {
      const FeasibilityVerdict& v = verdicts[3 * i + 1 + ul];
      DesignPoint pt;
      pt.config_name = slot.cfg->name();
      pt.mu = slot.num.mu();
      pt.ul_mode = v.mode;
      pt.worst_ul = v.worst_case.worst;
      pt.worst_dl = dl.worst_case.worst;
      pt.meets_deadline = v.analytic_meets && dl.analytic_meets;
      pt.available_to_private_5g = dynamic_cast<const FddConfig*>(slot.cfg.get()) == nullptr;
      if (const auto* ms = dynamic_cast<const MiniSlotConfig*>(slot.cfg.get())) {
        pt.standards_caveat = ms->violates_standard_recommendation();
      }
      pt.processing_radio_budget = slot.num.slot_duration();
      out.push_back(pt);
    }
  }
  return out;
}

std::vector<DesignPoint> viable_designs(const DesignSpaceOptions& opt) {
  std::vector<DesignPoint> v;
  for (DesignPoint& pt : explore_design_space(opt)) {
    if (pt.meets_deadline) v.push_back(pt);
  }
  return v;
}

}  // namespace u5g
