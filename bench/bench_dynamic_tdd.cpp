// Table 1, static vs dynamic: re-evaluates every candidate configuration x
// access mode with the dynamic slot-format policy (tdd/dynamic_format.hpp)
// switched on, against the same 0.5 ms one-way URLLC deadline.
//
// The static column is the paper's analytic worst case. The dynamic column
// is measured: a zero-jitter simulation is primed with a backlog burst so
// the policy commits upgraded slots, then lone probes sweep the arrival
// offsets of one period through the post-drain hold window — the worst
// probe latency is the configuration's adaptive worst case. Because the
// policy is a monotone relaxation (committed formats only ever add
// capability), the static bound is an upper bound of the dynamic column by
// construction; the interesting question is how far below it the adaptive
// waits land.
//
// `--strict` gates the headline claim: at least one statically-infeasible
// cell must cross to feasible under the dynamic policy, and no cell may
// regress feasible -> infeasible. `--threads N` (N > 1) appends a 2-cell
// sharded section exercising the cross-link interference exchange, with a
// bitwise 1-vs-N-worker determinism check under --strict.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/e2e_system.hpp"
#include "core/feasibility.hpp"
#include "core/latency_model.hpp"
#include "mac/scheduler.hpp"
#include "sim/sharded.hpp"

using namespace u5g;

namespace {

constexpr AccessMode kModes[] = {AccessMode::GrantBasedUl, AccessMode::GrantFreeUl,
                                 AccessMode::Downlink};

/// The analytic model's zero-jitter stack (mirrors tests/test_analytic_vs_sim):
/// protocol geometry is the only latency source, so the measured dynamic
/// worst case is directly comparable with the analytic static worst case.
StackConfig zero_jitter_config(std::shared_ptr<const DuplexConfig> duplex, AccessMode mode) {
  StackConfig cfg;
  cfg.duplex = std::move(duplex);
  cfg.sched = SchedulerParams::idealised();
  cfg.sched.ul_tx_symbols = 2;
  cfg.gnb_proc = ProcessingProfile::zero();
  cfg.ue_proc = ProcessingProfile::zero();
  cfg.gnb_radio = RadioHeadParams::ideal();
  cfg.ue_radio = RadioHeadParams::ideal();
  cfg.phy = PhyTimingParams{Nanos::zero(), Nanos::zero(), Nanos::zero(), Nanos::zero(), 0};
  cfg.upf = UpfParams{Nanos::zero(), Nanos::zero(), 0.0, Nanos::zero()};
  cfg.seed = 1;
  if (mode == AccessMode::GrantFreeUl) {
    cfg.grant_free = true;
    cfg.cg = ConfiguredGrantConfig::every_symbol(/*tb=*/256, /*symbols=*/2);
  } else if (mode == AccessMode::GrantBasedUl) {
    cfg.grant_free = false;
    cfg.sr = SrConfig::every_symbol();
  }
  return cfg;
}

struct DynamicCell {
  std::string config;
  AccessMode mode{};
  std::int64_t static_ns = 0;      ///< analytic worst case (static pattern)
  std::int64_t static_sim_ns = 0;  ///< measured worst probe, policy disabled
  std::int64_t dynamic_ns = 0;     ///< measured worst probe under the policy
  bool static_ok = false;
  bool dynamic_ok = false;
  std::uint64_t upgraded_slots = 0;
};

struct ProbeSweep {
  Nanos worst = Nanos::zero();
  std::uint64_t upgraded = 0;
};

/// One probe sweep: per probed offset, one primed cycle — a backlog burst
/// latches the policy's hold (when enabled), the burst drains, and a lone
/// probe arrives at the offset inside the still-held upgrade window.
ProbeSweep run_probe_sweep(const std::shared_ptr<const DuplexConfig>& duplex, AccessMode mode,
                           const std::vector<Nanos>& offsets, Nanos worst_offset, bool dynamic) {
  const Nanos period = duplex->period();
  const Nanos cycle = period * 24;
  constexpr int kBurst = 6;

  StackConfig cfg = zero_jitter_config(duplex, mode);
  cfg.dynamic_tdd.enabled = dynamic;
  cfg.dynamic_tdd.hold_slots = 64;  // span the drain gap and the probe window
  E2eSystem sys(cfg);
  const auto inject = [&](Nanos at) {
    if (mode == AccessMode::Downlink) {
      sys.send_downlink_at(at);
    } else {
      sys.send_uplink_at(at);
    }
  };
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const Nanos start = cycle * static_cast<std::int64_t>(i);
    for (int b = 0; b < kBurst; ++b) inject(start + worst_offset + Nanos{b});
    inject(start + period * 8 + offsets[i]);
  }
  sys.run_until(cycle * static_cast<std::int64_t>(offsets.size() + 2));

  ProbeSweep sweep;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const PacketRecord& rec = sys.records()[i * (kBurst + 1) + kBurst];
    if (!rec.ok) {
      std::fprintf(stderr, "bench_dynamic_tdd: %s/%s probe %zu undelivered\n",
                   duplex->name().c_str(), to_string(mode), i);
      sweep.worst = Nanos::max();
      break;
    }
    sweep.worst = std::max(sweep.worst, rec.latency());
  }
  sweep.upgraded = sys.dynamic_upgraded_slots();
  return sweep;
}

/// Measured adaptive worst case, paired with a static-policy control sweep
/// over the *identical* arrival pattern. The control is what the monotone
/// gate compares against: the analytic bound describes a lone packet, while
/// a probe landing exactly on a slot boundary behind a drained burst sits
/// one lattice point past that open supremum even with the policy disabled.
DynamicCell measure_dynamic(const std::shared_ptr<const DuplexConfig>& duplex, AccessMode mode,
                            const WorstCaseResult& wc, bool smoke) {
  const Nanos sym = duplex->numerology().symbol_duration();
  const Nanos period = duplex->period();

  std::vector<Nanos> offsets;
  const int stride = smoke ? 4 : 1;
  for (Nanos b = Nanos::zero(); b < period; b += sym * stride) {
    offsets.push_back(b);
    offsets.push_back(b + Nanos{1});
  }
  offsets.push_back(wc.worst_arrival_offset);

  const ProbeSweep st =
      run_probe_sweep(duplex, mode, offsets, wc.worst_arrival_offset, /*dynamic=*/false);
  const ProbeSweep dy =
      run_probe_sweep(duplex, mode, offsets, wc.worst_arrival_offset, /*dynamic=*/true);

  DynamicCell cell;
  cell.config = duplex->name();
  cell.mode = mode;
  cell.static_ns = wc.worst.count();
  cell.static_ok = wc.worst <= kUrllcOneWayDeadline;
  cell.static_sim_ns = st.worst.count();
  cell.dynamic_ns = dy.worst.count();
  cell.dynamic_ok = dy.worst <= kUrllcOneWayDeadline;
  cell.upgraded_slots = dy.upgraded;
  return cell;
}

/// Fixed-layout JSON (integer nanoseconds only) for the golden-file diff.
bool write_json(const std::string& path, const std::vector<DynamicCell>& cells, int flips,
                int regressions) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n  \"bench\": \"bench_dynamic_tdd\",\n  \"deadline_ns\": %lld,\n",
               static_cast<long long>(kUrllcOneWayDeadline.count()));
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const DynamicCell& c = cells[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"mode\": \"%s\", \"static_ns\": %lld, "
                 "\"static_sim_ns\": %lld, \"dynamic_ns\": %lld, \"static\": \"%s\", "
                 "\"dynamic\": \"%s\"}%s\n",
                 c.config.c_str(), to_string(c.mode), static_cast<long long>(c.static_ns),
                 static_cast<long long>(c.static_sim_ns), static_cast<long long>(c.dynamic_ns),
                 c.static_ok ? "ok" : "x", c.dynamic_ok ? "ok" : "x",
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"infeasible_to_feasible\": %d,\n  \"regressions\": %d\n}\n", flips,
               regressions);
  std::fclose(f);
  return true;
}

/// 2-cell sharded scenario with the cross-link interference exchange live:
/// DL bursts keep both cells' added-DL activity up, UL traffic on each cell
/// faces the neighbour's activity through `xlink_ul_bler`.
struct ShardedOutcome {
  std::uint64_t delivered = 0;
  std::uint64_t upgraded = 0;
  std::uint64_t xlink_losses = 0;
  std::uint64_t punctured = 0;
  SampleSet ul_us;
};

ShardedOutcome run_sharded(int threads, bool smoke) {
  auto owned = table1_configs();
  const std::shared_ptr<const DuplexConfig> duplex{std::move(owned[0])};  // DU
  StackConfig cfg = zero_jitter_config(duplex, AccessMode::GrantBasedUl);
  // A non-zero staging lead gives preemption something to steal: eMBB TBs
  // sit registered-but-not-on-air for this long before each window.
  cfg.sched.radio_lead = Nanos{100'000};
  cfg.num_ues = 2;
  cfg.num_cells = 2;
  cfg.intercell_load_coupling = 0.5;
  cfg.dynamic_tdd.enabled = true;
  cfg.dynamic_tdd.preemption = true;
  cfg.dynamic_tdd.xlink_ul_bler = 0.4;
  cfg.dynamic_tdd.hold_slots = 64;
  const Nanos period = duplex->period();
  const int rounds = smoke ? 12 : 48;

  ShardedEngine eng(cfg, ShardedOptions{threads});
  for (int r = 0; r < rounds; ++r) {
    const Nanos base = period * (4 * r + 1);
    for (int cell = 0; cell < 2; ++cell) {
      // DL backlog on the eMBB UE drives added-DL commits (the neighbour's
      // cross-link hazard) and stages puncture victims...
      for (int b = 0; b < 4; ++b) eng.send_downlink_at(base + Nanos{b}, cell, 1);
      // ...the URLLC UE's DL arrival lands inside the staging lead of the
      // next eMBB window (50 us before the slot, staged 100 us ahead), so
      // preemption can steal it...
      eng.send_downlink_at(base + period - Nanos{50'000}, cell, 0);
      // ...and UL traffic faces the neighbour's DL-upgrade activity.
      eng.send_uplink_at(base + period + Nanos{7}, cell, 0);
    }
  }
  eng.run_until(period * (4 * rounds + 16));

  ShardedOutcome out;
  out.delivered = eng.packets_delivered();
  out.upgraded = eng.dynamic_upgraded_slots();
  out.xlink_losses = eng.crosslink_ul_losses();
  out.punctured = eng.punctured_retx();
  out.ul_us = eng.latency_samples_us(Direction::Uplink);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_options(argc, argv);
  std::printf("== Table 1 revisited: static pattern vs dynamic slot-format policy ==\n\n");

  std::vector<std::shared_ptr<const DuplexConfig>> cfgs;
  for (auto& c : table1_configs()) cfgs.emplace_back(std::move(c));

  std::vector<DynamicCell> cells;
  for (const auto& duplex : cfgs) {
    for (AccessMode mode : kModes) {
      const WorstCaseResult wc = analyze_worst_case(*duplex, mode);
      cells.push_back(measure_dynamic(duplex, mode, wc, opt.smoke));
    }
  }

  TextTable out({"access mode", "config", "static [ms]", "dynamic [ms]", "static", "dynamic", ""});
  int flips = 0;
  int regressions = 0;
  for (const DynamicCell& c : cells) {
    const bool flip = !c.static_ok && c.dynamic_ok;
    const bool regress = c.static_ok && !c.dynamic_ok;
    flips += flip ? 1 : 0;
    regressions += regress ? 1 : 0;
    out.add_row({to_string(c.mode), c.config, fmt3(Nanos{c.static_ns}.ms()),
                 fmt3(Nanos{c.dynamic_ns}.ms()), c.static_ok ? "ok" : "x",
                 c.dynamic_ok ? "ok" : "x", flip ? "<- flips feasible" : (regress ? "REGRESSED" : "")});
  }
  std::printf("%s\n", out.render().c_str());
  std::printf("infeasible -> feasible flips: %d, regressions: %d\n", flips, regressions);

  bool strict_ok = true;
  if (opt.strict) {
    if (flips < 1) {
      std::fprintf(stderr, "STRICT: expected >= 1 infeasible->feasible flip, got %d\n", flips);
      strict_ok = false;
    }
    if (regressions != 0) {
      std::fprintf(stderr, "STRICT: %d cell(s) regressed feasible->infeasible\n", regressions);
      strict_ok = false;
    }
    for (const DynamicCell& c : cells) {
      // Monotone relaxation: against a static-policy control run on the
      // identical arrival pattern, adaptive can only shorten waits.
      if (c.dynamic_ns > c.static_sim_ns) {
        std::fprintf(stderr, "STRICT: %s/%s dynamic %lld ns exceeds static control %lld ns\n",
                     c.config.c_str(), to_string(c.mode), static_cast<long long>(c.dynamic_ns),
                     static_cast<long long>(c.static_sim_ns));
        strict_ok = false;
      }
    }
  }

  if (opt.threads > 1) {
    std::printf("\n== 2-cell sharded cross-link section (%d workers) ==\n", opt.threads);
    const ShardedOutcome got = run_sharded(opt.threads, opt.smoke);
    std::printf("delivered %llu, upgraded slots %llu, xlink UL losses %llu, punctured %llu\n",
                static_cast<unsigned long long>(got.delivered),
                static_cast<unsigned long long>(got.upgraded),
                static_cast<unsigned long long>(got.xlink_losses),
                static_cast<unsigned long long>(got.punctured));
    if (opt.strict) {
      const ShardedOutcome ref = run_sharded(1, opt.smoke);
      if (got.delivered != ref.delivered || got.upgraded != ref.upgraded ||
          got.xlink_losses != ref.xlink_losses || got.punctured != ref.punctured ||
          got.ul_us.samples() != ref.ul_us.samples()) {
        std::fprintf(stderr, "STRICT: sharded results differ between 1 and %d workers\n",
                     opt.threads);
        strict_ok = false;
      }
      if (got.upgraded == 0 || got.xlink_losses == 0 || got.punctured == 0) {
        std::fprintf(stderr,
                     "STRICT: sharded section exercised no upgrades/cross-link losses/punctures\n");
        strict_ok = false;
      }
    }
  }

  if (opt.json && !write_json(*opt.json, cells, flips, regressions)) {
    std::fprintf(stderr, "bench_dynamic_tdd: cannot write %s\n", opt.json->c_str());
    return 1;
  }
  return strict_ok ? 0 : 1;
}
