#pragma once
// Memoized transport-block sizes for the standard MCS table.
//
// `transport_block_size_bits` is pure in (MCS, n_symbols, n_prb) for the
// default single-layer/one-DMRS-symbol allocation, and monotone
// non-decreasing in n_prb (REs grow linearly, the quantisation rounds down
// consistently). The scheduler and PRB-sizing paths call it with the same
// handful of (MCS, symbol) pairs for every packet, so this table computes
// all 29 MCS × 14 symbol-counts × 273 PRBs once and turns `prbs_needed`
// from an O(max_prb) rescan into a binary search over a monotone row.

#include <array>
#include <cstdint>

#include "phy/modulation.hpp"

namespace u5g {

/// Precomputed TBS values for default allocations (n_layers = 1,
/// dmrs_overhead_re = 12), indexed by standard MCS index and symbol count.
class TbsTable {
 public:
  static constexpr int kMaxPrb = 273;      ///< widest FR1 carrier (100 MHz @ 30 kHz)
  static constexpr int kMaxSymbols = 14;   ///< one slot
  static constexpr int kMcsCount = 29;

  /// The lazily built process-wide table (immutable after construction).
  [[nodiscard]] static const TbsTable& instance();

  /// True when (`mcs`, `n_symbols`) falls inside the memoized domain: a
  /// standard table row (index *and* contents must match — callers may pass
  /// hand-built McsEntry values) and an in-slot symbol count.
  [[nodiscard]] static bool covers(const McsEntry& mcs, int n_symbols);

  /// TBS in bits for a default allocation of `n_prb` PRBs.
  [[nodiscard]] int tbs_bits(int mcs_index, int n_symbols, int n_prb) const {
    return row(mcs_index, n_symbols)[n_prb - 1];
  }

  /// Smallest PRB count in [1, max_prb] with TBS >= `need_bits`, or 0 —
  /// binary search over the monotone row. `max_prb` may exceed kMaxPrb;
  /// the overflow range is scanned directly.
  [[nodiscard]] int prbs_needed(int need_bits, const McsEntry& mcs, int n_symbols,
                                int max_prb) const;

 private:
  TbsTable();

  using Row = std::array<std::int32_t, kMaxPrb>;
  [[nodiscard]] const Row& row(int mcs_index, int n_symbols) const {
    return rows_[static_cast<std::size_t>(mcs_index) * kMaxSymbols +
                 static_cast<std::size_t>(n_symbols - 1)];
  }

  std::array<Row, static_cast<std::size_t>(kMcsCount) * kMaxSymbols> rows_;
};

}  // namespace u5g
