#pragma once
// "Journey of a Packet" (§3, Figs 2-3): the full ping round trip — uplink
// request with the SR/grant handshake (or grant-free), core-network hop,
// downlink reply — decomposed into the paper's numbered steps and its three
// latency categories.

#include <string>
#include <vector>

#include "core/latency_model.hpp"
#include "tdd/duplex_config.hpp"

namespace u5g {

/// Extra (non-RAN) parameters of the ping journey.
struct JourneyParams {
  LatencyModelParams ran;         ///< RAN timing model (§5 semantics)
  Nanos upf_latency{15'000};      ///< UPF decap/forward
  Nanos backhaul{50'000};         ///< gNB <-> UPF link, one-way
  Nanos server_turnaround{5'000}; ///< destination generates the reply
  bool grant_free = false;
};

/// The assembled round trip.
struct PingJourney {
  Timeline uplink;          ///< UE APP -> gNB SDAP (request)
  Nanos core_uplink{};      ///< gNB -> UPF -> destination
  Nanos turnaround{};       ///< destination processing
  Nanos core_downlink{};    ///< destination -> UPF -> gNB
  Timeline downlink;        ///< gNB SDAP -> UE APP (reply)
  Nanos rtt{};

  /// Category totals across the whole round trip (Fig 3's decomposition).
  [[nodiscard]] Nanos category_total(LatencyCategory c) const;
  /// Render the full numbered step list, paper-style.
  [[nodiscard]] std::string render() const;
};

/// Trace one ping transmitted at `request_time`.
[[nodiscard]] PingJourney trace_ping(const DuplexConfig& cfg, Nanos request_time,
                                     const JourneyParams& p = {});

}  // namespace u5g
