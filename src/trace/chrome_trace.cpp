#include "trace/chrome_trace.hpp"

#include <cstdio>
#include <set>

namespace u5g {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
}

void append_us(std::string& out, Nanos t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", t.us());
  out += buf;
}

void begin_record(std::string& out, bool& first) {
  if (!first) out += ",\n";
  first = false;
}

/// Emit one lane's metadata + complete events at process id `pid`.
void append_lane(std::string& out, bool& first, int pid, std::string_view process_name,
                 std::span<const TraceSpan> spans) {
  const std::string pid_str = std::to_string(pid);
  begin_record(out, first);
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid_str +
         ",\"tid\":0,\"args\":{\"name\":\"";
  append_escaped(out, process_name);
  out += "\"}}";

  std::set<std::int32_t> seqs;
  for (const TraceSpan& s : spans) seqs.insert(s.seq);
  for (std::int32_t seq : seqs) {
    begin_record(out, first);
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + pid_str +
           ",\"tid\":" + std::to_string(seq);
    out += ",\"args\":{\"name\":\"packet " + std::to_string(seq) + "\"}}";
  }

  for (const TraceSpan& s : spans) {
    begin_record(out, first);
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"";
    append_escaped(out, to_string(s.category));
    out += "\",\"ph\":\"X\",\"ts\":";
    append_us(out, s.start);
    out += ",\"dur\":";
    append_us(out, s.duration());
    out += ",\"pid\":" + pid_str + ",\"tid\":" + std::to_string(s.seq) + "}";
  }
}

std::string render(std::span<const TraceLane> lanes) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    append_lane(out, first, static_cast<int>(i), lanes[i].name, lanes[i].spans);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

std::string chrome_trace_json(std::span<const TraceSpan> spans, std::string_view process_name) {
  const TraceLane lane{std::string(process_name), spans};
  return render({&lane, 1});
}

std::string chrome_trace_json(std::span<const TraceLane> lanes) { return render(lanes); }

bool write_chrome_trace(const std::string& path, std::span<const TraceSpan> spans,
                        std::string_view process_name) {
  return write_file(path, chrome_trace_json(spans, process_name));
}

bool write_chrome_trace(const std::string& path, std::span<const TraceLane> lanes) {
  return write_file(path, chrome_trace_json(lanes));
}

}  // namespace u5g
