#pragma once
// Deterministic random number generation for the simulator.
//
// Every stochastic component (processing-time draws, OS jitter, channel loss,
// traffic arrivals) pulls from an explicitly seeded `Rng`, so a simulation run
// is exactly reproducible from its seed. The generator is xoshiro256**, which
// is fast, has a 2^256-1 period, and passes BigCrush.

#include <cstdint>
#include <cmath>
#include <numbers>

namespace u5g {

/// xoshiro256** pseudo-random generator with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise state from `seed` via SplitMix64 (avoids all-zero state).
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// true with probability `p` (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Split off an independent stream (for per-component generators).
  Rng fork() { return Rng{next_u64()}; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4]{};
};

/// Parameters of a lognormal fitted so that the *distribution itself* has the
/// given mean and standard deviation (moment matching). Used to calibrate
/// per-layer processing times to the paper's Table 2.
struct LognormalParams {
  double mu = 0.0;
  double sigma = 0.0;

  /// Fit from target mean m > 0 and standard deviation s >= 0.
  static LognormalParams from_mean_std(double m, double s) {
    if (s <= 0.0) return {std::log(m), 0.0};
    const double v = s * s;
    const double sigma2 = std::log(1.0 + v / (m * m));
    return {std::log(m) - 0.5 * sigma2, std::sqrt(sigma2)};
  }

  double sample(Rng& rng) const { return rng.lognormal(mu, sigma); }
  [[nodiscard]] double mean() const { return std::exp(mu + 0.5 * sigma * sigma); }
  [[nodiscard]] double stddev() const {
    const double s2 = sigma * sigma;
    return std::sqrt((std::exp(s2) - 1.0) * std::exp(2.0 * mu + s2));
  }
};

}  // namespace u5g
