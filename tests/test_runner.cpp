// Tests for the parallel Monte-Carlo harness: thread pool, seed derivation,
// mergeable accumulators, and the determinism contract — merged statistics
// are bitwise-identical across thread counts {1, 2, 8} and identical to a
// plain serial loop over the same per-replication seeds (including a golden
// check on a bench_fig6-style E2E run at small N).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/design_space.hpp"
#include "core/e2e_system.hpp"
#include "sim/runner.hpp"

namespace u5g {
namespace {

using namespace u5g::literals;

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, PropagatesJobException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error{"boom"}; });
  for (int i = 0; i < 10; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);  // remaining jobs still ran
}

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

// ---------------------------------------------------------------------------
// Seed derivation

TEST(RunnerSeedTest, ReplicationSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(replication_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);                              // no collisions
  EXPECT_EQ(replication_seed(42, 7), replication_seed(42, 7));  // pure function
  EXPECT_NE(replication_seed(42, 7), replication_seed(43, 7));  // root matters
}

TEST(RunnerSeedTest, SplitEvenlyCoversTotal) {
  for (int total : {0, 1, 7, 100, 2000}) {
    for (int parts : {1, 3, 8}) {
      int sum = 0;
      for (int i = 0; i < parts; ++i) sum += split_evenly(total, parts, i);
      EXPECT_EQ(sum, total) << total << "/" << parts;
    }
  }
}

// ---------------------------------------------------------------------------
// Mergeable accumulators

TEST(MergeTest, SampleSetMergeEqualsSerialAccumulation) {
  Rng rng(5);
  SampleSet serial;
  SampleSet a, b, c;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(10.0, 3.0);
    serial.add(x);
    (i < 100 ? a : i < 200 ? b : c).add(x);
  }
  a.merge(b);
  a.merge(c);
  ASSERT_EQ(a.samples(), serial.samples());  // byte-identical, order preserved
  EXPECT_EQ(a.quantile(0.999), serial.quantile(0.999));
}

TEST(MergeTest, HistogramMergeAddsBins) {
  Histogram h1(0.0, 10.0, 10), h2(0.0, 10.0, 10), all(0.0, 10.0, 10);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1.0, 12.0);  // exercise clamp bins too
    (i % 2 == 0 ? h1 : h2).add(x);
    all.add(x);
  }
  h1.merge(h2);
  EXPECT_EQ(h1.total(), all.total());
  for (std::size_t i = 0; i < all.bin_count(); ++i) EXPECT_EQ(h1.bin(i), all.bin(i)) << i;
}

TEST(MergeTest, HistogramMergeRejectsGeometryMismatch) {
  Histogram a(0.0, 10.0, 10), b(0.0, 10.0, 20), c(0.0, 5.0, 10);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(MergeTest, RunningStatsMergeMatchesSerial) {
  Rng rng(11);
  RunningStats serial, a, b;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.lognormal(1.0, 0.5);
    serial.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_NEAR(a.mean(), serial.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), serial.stddev(), 1e-9);
  EXPECT_EQ(a.min(), serial.min());
  EXPECT_EQ(a.max(), serial.max());
}

// ---------------------------------------------------------------------------
// run_replications: determinism across thread counts

TEST(RunnerTest, ResultsInIndexOrderAtAnyThreadCount) {
  for (int threads : {1, 2, 8}) {
    const auto out = run_replications(
        37, 123, [](int i, std::uint64_t seed) { return std::pair{i, seed}; }, {threads});
    ASSERT_EQ(out.size(), 37u) << threads;
    for (int i = 0; i < 37; ++i) {
      EXPECT_EQ(out[static_cast<std::size_t>(i)].first, i);
      EXPECT_EQ(out[static_cast<std::size_t>(i)].second,
                replication_seed(123, static_cast<std::uint64_t>(i)));
    }
  }
}

TEST(RunnerTest, EmptyAndSingle) {
  EXPECT_TRUE(run_replications(0, 1, [](int, std::uint64_t) { return 0; }).empty());
  const auto one = run_replications(1, 7, [](int, std::uint64_t s) { return s; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], replication_seed(7, 0));
}

TEST(RunnerTest, ExceptionInReplicationPropagates) {
  EXPECT_THROW(run_replications(
                   8, 1,
                   [](int i, std::uint64_t) -> int {
                     if (i == 3) throw std::runtime_error{"replication failed"};
                     return i;
                   },
                   {4}),
               std::runtime_error);
}

/// Monte-Carlo statistic fanned across threads: merged SampleSet must be
/// byte-identical for T in {1, 2, 8} and equal to the hand-written serial
/// loop over the same seeds.
TEST(RunnerTest, MergedStatisticsIndependentOfThreadCount) {
  const auto replicate = [](int, std::uint64_t seed) {
    Rng rng(seed);
    SampleSet s;
    for (int i = 0; i < 200; ++i) s.add(rng.exponential(2.0));
    return s;
  };

  // Reference: plain serial loop, no harness.
  SampleSet serial;
  for (int i = 0; i < 12; ++i) {
    SampleSet part = replicate(i, replication_seed(77, static_cast<std::uint64_t>(i)));
    serial.merge(part);
  }

  for (int threads : {1, 2, 8}) {
    SampleSet merged = merge_replications(run_replications(12, 77, replicate, {threads}));
    ASSERT_EQ(merged.samples(), serial.samples()) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Golden determinism on a bench_fig6-style E2E run at small N

struct Fig6Mini {
  SampleSet dl;
  SampleSet ul;

  void merge(const Fig6Mini& o) {
    dl.merge(o.dl);
    ul.merge(o.ul);
  }
};

Fig6Mini fig6_mini_replication(int packets, std::uint64_t seed) {
  E2eSystem sys(StackConfig::testbed_grant_based(seed));
  const Nanos period = 2_ms;
  Rng rng(seed ^ 0xF16);
  for (int i = 0; i < packets; ++i) {
    const Nanos base = period * (2 * i);
    sys.send_uplink_at(base + Nanos{static_cast<std::int64_t>(
                                  rng.uniform() * static_cast<double>(period.count()))});
    sys.send_downlink_at(base + period +
                         Nanos{static_cast<std::int64_t>(
                             rng.uniform() * static_cast<double>(period.count()))});
  }
  sys.run_until(period * (2 * packets + 20));
  return {sys.latency_samples_us(Direction::Downlink), sys.latency_samples_us(Direction::Uplink)};
}

TEST(RunnerGoldenTest, Fig6StyleRunIdenticalAcrossThreadCounts) {
  constexpr int kTrials = 4;
  constexpr int kPacketsPerTrial = 12;
  constexpr std::uint64_t kRoot = 42;

  // Serial reference: the pre-harness loop, one replication after another.
  Fig6Mini serial;
  for (int i = 0; i < kTrials; ++i) {
    Fig6Mini part =
        fig6_mini_replication(kPacketsPerTrial, replication_seed(kRoot, static_cast<std::uint64_t>(i)));
    serial.merge(part);
  }
  ASSERT_GT(serial.dl.count(), 0u);
  ASSERT_GT(serial.ul.count(), 0u);

  for (int threads : {1, 2, 8}) {
    Fig6Mini merged = merge_replications(run_replications(
        kTrials, kRoot,
        [](int, std::uint64_t seed) { return fig6_mini_replication(kPacketsPerTrial, seed); },
        {threads}));
    ASSERT_EQ(merged.dl.samples(), serial.dl.samples()) << "threads=" << threads;
    ASSERT_EQ(merged.ul.samples(), serial.ul.samples()) << "threads=" << threads;
  }

  // Golden anchor: the merged statistics are a pure function of the root
  // seed. A change here means the determinism contract (seed derivation,
  // merge order, or the simulation itself) changed — bump deliberately.
  EXPECT_EQ(serial.dl.count() + serial.ul.count(),
            static_cast<std::size_t>(2 * kTrials * kPacketsPerTrial));
  const double checksum =
      std::accumulate(serial.dl.samples().begin(), serial.dl.samples().end(), 0.0) +
      std::accumulate(serial.ul.samples().begin(), serial.ul.samples().end(), 0.0);
  EXPECT_TRUE(std::isfinite(checksum));
  EXPECT_GT(checksum, 0.0);
}

// ---------------------------------------------------------------------------
// Parallel design-space exploration matches the serial order

TEST(RunnerTest, DesignSpaceIdenticalAcrossThreadCounts) {
  DesignSpaceOptions serial_opt;
  serial_opt.threads = 1;
  const auto reference = explore_design_space(serial_opt);
  ASSERT_FALSE(reference.empty());

  for (int threads : {2, 8}) {
    DesignSpaceOptions opt;
    opt.threads = threads;
    const auto got = explore_design_space(opt);
    ASSERT_EQ(got.size(), reference.size()) << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(got[i].config_name, reference[i].config_name) << i;
      EXPECT_EQ(got[i].mu, reference[i].mu) << i;
      EXPECT_EQ(got[i].ul_mode, reference[i].ul_mode) << i;
      EXPECT_EQ(got[i].worst_ul, reference[i].worst_ul) << i;
      EXPECT_EQ(got[i].worst_dl, reference[i].worst_dl) << i;
      EXPECT_EQ(got[i].meets_deadline, reference[i].meets_deadline) << i;
    }
  }
}

}  // namespace
}  // namespace u5g
