#include "core/cell.hpp"

#include "sim/runner.hpp"

namespace u5g {

std::uint64_t cell_seed(std::uint64_t root, int index) {
  return index == 0 ? root : replication_seed(root, static_cast<std::uint64_t>(index));
}

StackConfig per_cell_config(const StackConfig& base, int index) {
  StackConfig c = base;
  c.seed = cell_seed(base.seed, index);
  return c;
}

Cell::Cell(const StackConfig& base, int index)
    : index_(index), sys_(std::make_unique<E2eSystem>(per_cell_config(base, index))) {}

void Cell::queue_uplink(Nanos at, int ue) { sys_->send_uplink_at(at, ue); }

void Cell::queue_downlink(Nanos at, int ue) { sys_->send_downlink_at(at, ue); }

void Cell::advance_to(Nanos to) { sys_->run_until(to); }

std::uint64_t Cell::inflight_packets() const {
  return sys_->packets_started() - sys_->packets_delivered();
}

void Cell::set_neighbor_load(double equivalent_ues) {
  sys_->set_external_load_ues(equivalent_ues);
}

}  // namespace u5g
