# Golden-file regression harness: regenerate a bench's fixed-seed JSON and
# diff it bit for bit against the checked-in golden.
#
#   cmake -DBENCH=<exe> -DARGS=<semicolon-list> -DOUT=<file> -DGOLDEN=<file>
#         -P check_golden.cmake
#
# The bench is run as `<exe> <args...> --json <out>`; any numeric drift in
# Table 1 verdicts / worst cases or Table 2 per-layer means changes the
# bytes and fails the diff. To bless an intentional change, copy OUT over
# GOLDEN (the failure message prints the exact command).

foreach(var BENCH OUT GOLDEN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_golden.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${BENCH} ${ARGS} --json ${OUT}
  RESULT_VARIABLE run_rv
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_out)
if(NOT run_rv EQUAL 0)
  message(FATAL_ERROR "golden: ${BENCH} exited with ${run_rv}\n${run_out}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff_rv)
if(NOT diff_rv EQUAL 0)
  file(READ ${OUT} got)
  file(READ ${GOLDEN} want)
  message(FATAL_ERROR
      "golden: ${OUT} differs from ${GOLDEN}\n"
      "--- expected ---\n${want}\n--- got ---\n${got}\n"
      "If the change is intentional, bless it with:\n"
      "  cp ${OUT} ${GOLDEN}")
endif()
