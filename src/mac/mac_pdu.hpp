#pragma once
// MAC PDU multiplexing (TS 38.321 §6.1): a transport block is a sequence of
// (subheader, payload) pairs — RLC PDUs addressed by logical channel id and
// MAC control elements (BSR). Subheader: LCID byte + 16-bit length.

#include <cstdint>
#include <optional>
#include <span>

#include "common/bytes.hpp"
#include "common/delivery.hpp"
#include "common/small_vec.hpp"

namespace u5g {

/// Logical channel ids (subset): 1-32 = DRBs; 61 = short BSR CE; 63 = padding.
enum class Lcid : std::uint8_t {
  Drb1 = 1,
  ShortBsr = 61,
  Padding = 63,
};

/// One multiplexed element of a MAC PDU.
struct MacSubPdu {
  Lcid lcid = Lcid::Drb1;
  ByteBuffer payload;
};

/// SubPDU list sized for the common case (an RLC PDU plus a BSR CE or two)
/// without a heap allocation.
using MacSubPdus = SmallVec<MacSubPdu, 4>;

/// Serialise subPDUs into one transport block of exactly `tb_bytes`
/// (padding appended). Throws std::length_error if they do not fit.
/// Payloads are copied into the block; the subPDUs are left untouched.
[[nodiscard]] ByteBuffer build_mac_pdu(std::span<const MacSubPdu> subpdus, std::size_t tb_bytes);

/// Parse a transport block back into subPDUs (padding stripped).
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<MacSubPdus> parse_mac_pdu(ByteBuffer&& tb);

/// Streaming form on the unified delivery surface: invokes `deliver` once
/// per subPDU (padding stripped) with `PacketMeta::lcid` set, building no
/// intermediate list. Returns false on malformed input (deliveries already
/// made stand).
bool parse_mac_pdu_to(ByteBuffer&& tb, DeliveryFn deliver);

/// Overhead per subPDU: 1 byte LCID + 2 bytes length.
inline constexpr std::size_t kMacSubheaderBytes = 3;

}  // namespace u5g
