#pragma once
// SDAP layer (TS 37.324): maps QoS flows onto data radio bearers and tags
// each downlink/uplink SDU with its QoS Flow Identifier in a 1-byte header.
// In the paper's ping journey this is the first 5G-specific layer an IP
// packet meets ("quality of service management", §3).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/delivery.hpp"
#include "common/ids.hpp"
#include "sdap/qos.hpp"

namespace u5g {

/// SDAP data PDU header (downlink format): RDI/RQI flags + 6-bit QFI.
struct SdapHeader {
  std::uint8_t qfi = 0;  ///< QoS flow id, 6 bits

  [[nodiscard]] std::uint8_t encode() const { return qfi & 0x3F; }
  static SdapHeader decode(std::uint8_t b) { return {static_cast<std::uint8_t>(b & 0x3F)}; }
};

class SdapEntity {
 public:
  /// Bind QoS flow `qfi` to bearer `bearer` with the given 5QI.
  void configure_flow(std::uint8_t qfi, BearerId bearer, const FiveQi& qos) {
    flows_[qfi] = FlowCtx{bearer, qos};
  }

  [[nodiscard]] std::optional<BearerId> bearer_of(std::uint8_t qfi) const {
    const auto it = flows_.find(qfi);
    if (it == flows_.end()) return std::nullopt;
    return it->second.bearer;
  }

  [[nodiscard]] std::optional<FiveQi> qos_of(std::uint8_t qfi) const {
    const auto it = flows_.find(qfi);
    if (it == flows_.end()) return std::nullopt;
    return it->second.qos;
  }

  /// Add the SDAP header for `qfi`. Throws if the flow is not configured.
  void encapsulate(ByteBuffer& sdu, std::uint8_t qfi) const {
    if (!flows_.contains(qfi)) throw std::invalid_argument{"SdapEntity: unconfigured QFI"};
    const std::uint8_t h = SdapHeader{qfi}.encode();
    sdu.push_header({&h, 1});
  }

  /// Strip the SDAP header, returning the QFI.
  std::uint8_t decapsulate(ByteBuffer& pdu) const {
    const auto h = pdu.pop_header(1);
    return SdapHeader::decode(h[0]).qfi;
  }

  /// Strip the SDAP header and hand the SDU upward on the unified delivery
  /// surface, with `PacketMeta::qfi` set.
  void decapsulate_to(ByteBuffer&& pdu, DeliveryFn deliver) const {
    PacketMeta meta;
    meta.qfi = decapsulate(pdu);
    deliver(std::move(pdu), meta);
  }

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

 private:
  struct FlowCtx {
    BearerId bearer;
    FiveQi qos;
  };
  std::unordered_map<std::uint8_t, FlowCtx> flows_;
};

}  // namespace u5g
