#pragma once
// Struct-of-arrays pool of per-UE MAC-side state for one cell.
//
// The per-slot control loops — "any UE with an SR latched?", "which UEs have
// HARQ retransmissions queued?" — used to chase that state through one
// heap-allocated UeCtx per UE. This pool keeps each field in its own
// contiguous array sized to the cell's UE count, so those questions become
// word-at-a-time scans over dense memory instead of pointer walks: eight
// UEs' flags per 64-bit load, popcount for tallies, countr_zero to find the
// set members, no data-dependent branches in the scan body.
//
// The per-UE context objects bind *references* into these rows, so the
// event-driven datapath reads and writes exactly the same lvalues it always
// did (`ue.sr_pending = true`) while batch consumers scan the rows directly.
// Row addresses are stable after construction: a cell's UE population is
// fixed, so resize() happens once, before any reference is taken.

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

namespace u5g {

class UeMacPool {
 public:
  explicit UeMacPool(std::size_t n = 0) { resize(n); }

  /// Size the pool and reset every field to its idle value. Must not be
  /// called once UeCtx references are bound — rows would reallocate.
  void resize(std::size_t n) {
    n_ = n;
    sr_pending_ = std::make_unique<bool[]>(n);      // zero == false
    cg_scheduled_ = std::make_unique<bool[]>(n);
    ul_reorder_armed_ = std::make_unique<bool[]>(n);
    dl_reorder_armed_ = std::make_unique<bool[]>(n);
    ul_trace_.assign(n, -1);
    dl_trace_.assign(n, -1);
    retx_depth_.assign(n, 0);
  }
  [[nodiscard]] std::size_t size() const { return n_; }

  // -- Per-UE lvalues (UeCtx binds references to these) ---------------------
  [[nodiscard]] bool& sr_pending(std::size_t i) { return sr_pending_[i]; }
  [[nodiscard]] bool& cg_scheduled(std::size_t i) { return cg_scheduled_[i]; }
  [[nodiscard]] bool& ul_reorder_armed(std::size_t i) { return ul_reorder_armed_[i]; }
  [[nodiscard]] bool& dl_reorder_armed(std::size_t i) { return dl_reorder_armed_[i]; }
  [[nodiscard]] std::int32_t& ul_trace(std::size_t i) { return ul_trace_[i]; }
  [[nodiscard]] std::int32_t& dl_trace(std::size_t i) { return dl_trace_[i]; }
  /// Mirrors the length of the UE's HARQ retransmission queue; the queue
  /// payload (the TBs) stays with the UE, the *head count* lives here so
  /// re-arm sweeps scan one dense array.
  [[nodiscard]] std::uint32_t& retx_depth(std::size_t i) { return retx_depth_[i]; }

  // -- Contiguous row views for batch scans ---------------------------------
  [[nodiscard]] std::span<const bool> sr_pending_row() const { return {sr_pending_.get(), n_}; }
  [[nodiscard]] std::span<const bool> cg_scheduled_row() const {
    return {cg_scheduled_.get(), n_};
  }
  [[nodiscard]] std::span<const std::uint32_t> retx_depth_row() const { return retx_depth_; }

  /// Set flags in `row`, eight UEs per 64-bit load.
  [[nodiscard]] static std::size_t count_set(std::span<const bool> row) {
    std::size_t c = 0;
    std::size_t i = 0;
    for (; i + 8 <= row.size(); i += 8) {
      c += static_cast<std::size_t>(std::popcount(load8(row.data() + i)));
    }
    for (; i < row.size(); ++i) c += static_cast<std::size_t>(row[i]);
    return c;
  }

  [[nodiscard]] static bool any_set(std::span<const bool> row) {
    std::size_t i = 0;
    for (; i + 8 <= row.size(); i += 8) {
      if (load8(row.data() + i) != 0) return true;
    }
    for (; i < row.size(); ++i) {
      if (row[i]) return true;
    }
    return false;
  }

  /// Invoke `f(index)` for every set flag, ascending. The scan body finds
  /// set members with countr_zero over 8-flag words rather than testing
  /// each UE with its own branch.
  template <typename F>
  static void for_each_set(std::span<const bool> row, F&& f) {
    std::size_t i = 0;
    for (; i + 8 <= row.size(); i += 8) {
      std::uint64_t w = load8(row.data() + i);
      while (w != 0) {
        // Flags are one byte each, so set bits sit at positions 0, 8, ...;
        // countr_zero >> 3 is the byte (UE) offset within the word.
        f(i + static_cast<std::size_t>(std::countr_zero(w) >> 3));
        w &= w - 1;
      }
    }
    for (; i < row.size(); ++i) {
      if (row[i]) f(i);
    }
  }

  /// Invoke `f(index, depth)` for every UE with a non-empty retx queue.
  template <typename F>
  void for_each_retx(F&& f) const {
    for (std::size_t i = 0; i < retx_depth_.size(); ++i) {
      if (retx_depth_[i] != 0) f(i, retx_depth_[i]);
    }
  }

 private:
  static std::uint64_t load8(const bool* p) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);  // bool is 1 byte, value 0 or 1
    return w;
  }

  std::size_t n_ = 0;
  std::unique_ptr<bool[]> sr_pending_;
  std::unique_ptr<bool[]> cg_scheduled_;
  std::unique_ptr<bool[]> ul_reorder_armed_;
  std::unique_ptr<bool[]> dl_reorder_armed_;
  std::vector<std::int32_t> ul_trace_;
  std::vector<std::int32_t> dl_trace_;
  std::vector<std::uint32_t> retx_depth_;
};

}  // namespace u5g
