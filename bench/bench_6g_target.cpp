// Extension experiment (§1): "discussions around 6G indicate even stricter
// latency goals of 0.1 ms uplink and downlink (0.2 ms round trip)".
// Re-run the §5 design-space analysis against the 6G deadline: which of the
// 5G mechanisms survive, in FR1 and (protocol-wise) in FR2?

#include <cstdio>

#include "core/design_space.hpp"
#include "core/latency_model.hpp"
#include "tdd/fdd.hpp"
#include "tdd/mini_slot.hpp"

using namespace u5g;
using namespace u5g::literals;

namespace {

constexpr Nanos k6gDeadline{100'000};  // 0.1 ms one-way

void fr1_sweep() {
  std::printf("-- FR1 (sub-6 GHz) against the 0.1 ms one-way 6G target --\n");
  DesignSpaceOptions opt;
  opt.deadline = k6gDeadline;
  const auto all = explore_design_space(opt);
  int viable = 0;
  for (const DesignPoint& pt : all) {
    if (pt.meets_deadline) {
      ++viable;
      std::printf("   viable: %s u%d %s (UL %.0f us, DL %.0f us)\n", pt.config_name.c_str(),
                  pt.mu, to_string(pt.ul_mode), pt.worst_ul.us(), pt.worst_dl.us());
    }
  }
  if (viable == 0) std::printf("   NO FR1 design point meets 0.1 ms one-way.\n");
  std::printf("   (%d of %zu points viable)\n\n", viable, all.size());
}

void fr2_protocol_sweep() {
  std::printf("-- FR2 numerologies, protocol-only (reliability caveats aside) --\n");
  std::printf("   %4s %12s | %12s %12s %12s\n", "mu", "slot[us]", "GB-UL[us]", "GF-UL[us]",
              "DL[us]");
  for (Numerology num : numerologies_in_fr2()) {
    const MiniSlotConfig mini{num, 2};
    const auto gb = analyze_worst_case(mini, AccessMode::GrantBasedUl, {});
    const auto gf = analyze_worst_case(mini, AccessMode::GrantFreeUl, {});
    const auto dl = analyze_worst_case(mini, AccessMode::Downlink, {});
    const bool meets = gb.worst <= k6gDeadline && dl.worst <= k6gDeadline;
    std::printf("   %4d %12.3f | %12.1f %12.1f %12.1f %s\n", num.mu(),
                num.slot_duration().us(), gb.worst.us(), gf.worst.us(), dl.worst.us(),
                meets ? "<- meets 0.1 ms" : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== 6G target: 0.1 ms one-way (0.2 ms round trip), per the paper's §1 ==\n\n");
  fr1_sweep();
  fr2_protocol_sweep();

  // The conclusions this bench asserts:
  //  (a) no FR1 design point reaches 0.1 ms (even mini-slot at µ2 needs
  //      ~70-110 µs protocol-side, leaving nothing for processing/radio,
  //      and its grant-based handshake exceeds the budget);
  //  (b) FR2 at µ>=3 can make the protocol budget — but the paper's FR2
  //      reliability analysis still applies, so 6G URLLC inherits exactly
  //      the blockage problem 5G mmWave has today.
  DesignSpaceOptions opt;
  opt.deadline = k6gDeadline;
  bool fr1_gb_viable = false;
  for (const DesignPoint& pt : explore_design_space(opt)) {
    if (pt.meets_deadline && pt.ul_mode == AccessMode::GrantBasedUl) fr1_gb_viable = true;
  }
  const MiniSlotConfig mu5{kMu5, 2};
  const bool fr2_ok =
      analyze_worst_case(mu5, AccessMode::GrantBasedUl, {}).worst <= k6gDeadline;
  std::printf("FR1 grant-based reaches 0.1 ms: %s (expected: no)\n",
              fr1_gb_viable ? "yes" : "no");
  std::printf("FR2 mini-slot at u5 reaches 0.1 ms protocol-wise: %s (expected: yes)\n",
              fr2_ok ? "yes" : "no");
  const bool ok = !fr1_gb_viable && fr2_ok;
  std::printf("\n6G's 0.1 ms target forces either FR2 (with its reliability problem) or new\n"
              "FR1 mechanisms beyond Release-18 — the paper's \"distant goal\" sharpened: %s\n",
              ok ? "CONFIRMED" : "NOT OBSERVED");
  return ok ? 0 : 1;
}
