#pragma once
// gNB MAC scheduler (§3 "SCHE", §4's central interdependency point).
//
// Decisions happen once per granule (slot, or mini-slot under the Mini-Slot
// configuration). The scheduler must lead the air interface by enough time
// for PHY encoding and the radio bus — §4: "the MAC scheduler must be
// designed to account for the total processing time in subsequent layers
// and radio latency. Failure to do so may result in the radio not being
// ready for transmission, leading to a corrupted signal." That lead is
// `radio_lead` plus the explicit safety `margin`; the margin-vs-reliability
// trade is ablation A3.

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "mac/grant.hpp"
#include "tdd/opportunity.hpp"

namespace u5g {

struct SchedulerParams {
  /// Time the gNB needs between a decision and the first sample on the air
  /// (DL PHY encode + bus transfer + DAC). With the §7 USB radio this is
  /// ~one slot; the idealised analysis uses zero.
  Nanos radio_lead{};
  /// Extra safety margin on top of radio_lead (§4's "include a margin").
  Nanos margin{};
  /// Minimum UE time between receiving a grant and transmitting (K2 floor).
  Nanos ue_min_prep{};
  /// Symbols per uplink data allocation.
  int ul_tx_symbols = 2;
  /// Transport block granted per UL grant.
  std::size_t ul_tb_bytes = 256;
  /// DL data allocation used for window-capacity sizing: a typical
  /// private-5G carrier (100 PRB at MCS 19).
  int dl_prbs = 100;
  int dl_mcs_index = 19;

  static SchedulerParams idealised() { return {}; }
};

/// A planned uplink grant: the control (DCI) window that announces it plus
/// the granted PUSCH window.
struct UlGrantPlan {
  TxWindow control;
  UlGrant grant;
};

/// Pure decision logic over a DuplexConfig: given "when is the scheduler
/// aware", produce "when does what go on the air". Multi-UE contention is
/// modelled by serialising allocations: each direction remembers the end of
/// its last handed-out window and never double-books.
class MacScheduler {
 public:
  MacScheduler(const DuplexConfig& duplex, SchedulerParams p) : duplex_(duplex), p_(p) {}

  /// Plan the response to an SR that the MAC became aware of at `sr_decoded`:
  /// decision at the next scheduler run, DCI at the next control opportunity
  /// that the radio can still make, PUSCH at the next uplink window the UE
  /// can make after decoding the DCI.
  [[nodiscard]] std::optional<UlGrantPlan> plan_ul_grant(UeId ue, Nanos sr_decoded);

  /// Plan a downlink transmission for data ready (at RLC) at `ready`:
  /// served in the first DL granule whose start the radio pipeline can meet.
  [[nodiscard]] std::optional<DlAssignment> plan_dl(UeId ue, Nanos ready, std::size_t tb_bytes);

  /// Forget all booked windows (new simulation run).
  void reset() {
    ul_booked_until_ = Nanos::zero();
    dl_booked_until_ = Nanos::zero();
  }

  /// Bytes one DL window of `n_symbols` symbols can physically carry at the
  /// configured (dl_prbs, dl_mcs_index) allocation. The same few symbol
  /// counts recur for every served TB, so results are memoized — the TBS
  /// computation runs once per distinct window shape, not once per packet.
  [[nodiscard]] std::size_t dl_window_capacity_bytes(int n_symbols);

  [[nodiscard]] const SchedulerParams& params() const { return p_; }
  [[nodiscard]] Nanos total_lead() const { return p_.radio_lead + p_.margin; }

 private:
  static constexpr int kCapCacheSymbols = 64;  ///< covers multi-slot DL windows

  const DuplexConfig& duplex_;
  SchedulerParams p_;
  Nanos ul_booked_until_{};
  Nanos dl_booked_until_{};
  std::array<std::int64_t, kCapCacheSymbols + 1> dl_capacity_cache_{};  ///< 0 = unset
};

}  // namespace u5g
