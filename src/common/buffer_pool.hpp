#pragma once
// Freelist pool of recycled packet-buffer backing stores.
//
// Every packet through the stack used to allocate (and free) a fresh
// `std::vector` per layer hop; at Monte-Carlo scale that heap traffic
// dominates the per-packet protocol work. The pool keeps released backing
// stores on per-size-class freelists so the warm datapath acquires and
// releases storage without touching the heap: the first few packets carve
// blocks from `operator new`, every later packet reuses them.
//
// Threading model: one pool per thread (`BufferPool::local()`), matching the
// Monte-Carlo runner where each worker owns its replications end to end.
// Blocks are self-describing (they carry their capacity), so a buffer that
// migrates across threads simply recycles into the destination thread's
// pool — safe, just not the steady-state pattern.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

namespace u5g {

/// Per-thread freelist allocator for ByteBuffer backing stores.
class BufferPool {
 public:
  /// One backing store: this header followed by `capacity` payload bytes.
  struct Block {
    std::uint32_t capacity = 0;  ///< usable bytes following the header
    std::int8_t cls = -1;        ///< size-class index; -1 = unpooled (huge)
    std::uint16_t owner = 0;     ///< id of the pool that acquired this block
    Block* next = nullptr;       ///< freelist link while recycled
    [[nodiscard]] std::uint8_t* data() {
      return reinterpret_cast<std::uint8_t*>(this) + sizeof(Block);
    }
  };

  /// Smallest pooled capacity; classes double up to the largest. Requests
  /// beyond the largest class fall back to plain heap blocks (released to
  /// the heap, not the freelist) — packets that size do not exist on the
  /// warm path.
  static constexpr std::size_t kMinCapacity = 256;
  static constexpr std::size_t kMaxPooledCapacity = std::size_t{1} << 20;

  BufferPool() {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.pools.push_back(this);
  }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() {
    {
      // Fold this pool's traffic into the retired tallies so global_stats()
      // stays exact across thread (and pool) lifetimes.
      Registry& r = registry();
      const std::lock_guard<std::mutex> lock(r.mu);
      r.retired_acquires += acq_.load(std::memory_order_relaxed);
      r.retired_releases += rel_.load(std::memory_order_relaxed);
      std::erase(r.pools, this);
    }
    for (Block*& head : free_) {
      while (head != nullptr) {
        Block* b = head;
        head = b->next;
        ::operator delete(b);
      }
    }
  }

  /// A block with at least `capacity` usable bytes: from the matching
  /// freelist when one is cached, freshly carved otherwise.
  [[nodiscard]] Block* acquire(std::size_t capacity) {
    const int cls = class_of(capacity);
    if (cls >= 0 && free_[static_cast<std::size_t>(cls)] != nullptr) {
      Block* b = free_[static_cast<std::size_t>(cls)];
      free_[static_cast<std::size_t>(cls)] = b->next;
      b->next = nullptr;
      b->owner = id_;
      ++stats_.reuses;
      ++stats_.outstanding;
      bump(acq_);
      return b;
    }
    const std::size_t cap = cls >= 0 ? class_capacity(cls) : capacity;
    auto* b = static_cast<Block*>(::operator new(sizeof(Block) + cap));
    b->capacity = static_cast<std::uint32_t>(cap);
    b->cls = static_cast<std::int8_t>(cls);
    b->owner = id_;
    b->next = nullptr;
    ++stats_.heap_allocations;
    ++stats_.outstanding;
    bump(acq_);
    return b;
  }

  /// Return a block: recycled onto its class freelist, or freed if unpooled.
  void release(Block* b) {
    if (b == nullptr) return;
    ++stats_.releases;
    // Blocks are stamped with the acquiring pool at acquire time, so a
    // migrated block decrements nobody: the source pool keeps counting it
    // as outstanding (it never came home) and this pool records a foreign
    // release. Per-pool `outstanding` therefore never underflows, and the
    // migration-exact live count is global_stats(), merged on read from
    // the process-wide acquire/release counters.
    if (b->owner == id_) {
      --stats_.outstanding;
    } else {
      ++stats_.foreign_releases;
    }
    bump(rel_);
    if (b->cls < 0) {
      ::operator delete(b);
      return;
    }
    b->next = free_[static_cast<std::size_t>(b->cls)];
    free_[static_cast<std::size_t>(b->cls)] = b;
  }

  /// Pre-carve `count` blocks of (at least) `capacity` so the very first
  /// packets of a run are already freelist hits. All blocks are held live
  /// until the end so each iteration carves a fresh one instead of
  /// round-tripping the same block through the freelist.
  void prefill(std::size_t capacity, std::size_t count) {
    const std::uint64_t reuses = stats_.reuses;
    const std::uint64_t releases = stats_.releases;
    Block* held = nullptr;
    for (std::size_t i = 0; i < count; ++i) {
      Block* b = acquire(capacity);
      b->next = held;
      held = b;
    }
    while (held != nullptr) {
      Block* b = held;
      held = b->next;
      b->next = nullptr;
      release(b);
    }
    // Prefilled blocks were never handed to a caller: the acquire/release
    // round trips above should not count as datapath reuse traffic.
    stats_.reuses = reuses;
    stats_.releases = releases;
  }

  /// Per-pool counters. `outstanding` counts blocks this pool acquired that
  /// have not been released back *to this pool*: a block that migrates to
  /// another thread stays in the source pool's count and shows up as a
  /// `foreign_releases` tick on the destination, so neither counter can
  /// wrap. The migration-exact live count is global_stats().
  struct Stats {
    std::uint64_t heap_allocations = 0;  ///< blocks carved from operator new
    std::uint64_t reuses = 0;            ///< acquires served by a freelist
    std::uint64_t releases = 0;          ///< blocks returned to the pool
    std::uint64_t outstanding = 0;       ///< own live blocks not released here
    std::uint64_t foreign_releases = 0;  ///< blocks another pool acquired
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Process-wide view, merged on read: each pool keeps its own acquire and
  /// release tallies (written only by the thread running that pool, as plain
  /// relaxed stores — no locked read-modify-write on the hot path), and the
  /// reader sums them across the registry. Exact even when buffers migrate
  /// across threads: a migrated block is one acquire on its source pool and
  /// one release on its destination, so the sums still pair up.
  struct GlobalStats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::int64_t outstanding = 0;  ///< acquires - releases, process-wide
  };
  [[nodiscard]] static GlobalStats global_stats() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mu);
    std::uint64_t a = reg.retired_acquires;
    std::uint64_t r = reg.retired_releases;
    for (const BufferPool* p : reg.pools) {
      a += p->acq_.load(std::memory_order_relaxed);
      r += p->rel_.load(std::memory_order_relaxed);
    }
    return GlobalStats{a, r, static_cast<std::int64_t>(a - r)};
  }

  /// The calling thread's pool. ByteBuffer routes all backing-store
  /// management through this; entities never pass pools explicitly.
  static BufferPool& local() {
    static thread_local BufferPool pool;
    return pool;
  }

 private:
  static constexpr int kMinClassBits = 8;   // 256
  static constexpr int kMaxClassBits = 20;  // 1 MiB
  static constexpr std::size_t kClasses = kMaxClassBits - kMinClassBits + 1;

  /// Size-class index for `capacity`, or -1 when too large to pool.
  [[nodiscard]] static int class_of(std::size_t capacity) {
    if (capacity > kMaxPooledCapacity) return -1;
    const std::size_t c = capacity < kMinCapacity ? kMinCapacity : capacity;
    return std::bit_width(c - 1) - kMinClassBits;
  }
  [[nodiscard]] static std::size_t class_capacity(int cls) {
    return std::size_t{1} << (cls + kMinClassBits);
  }

  /// Live pools plus the folded-in traffic of destroyed ones. Leaked on
  /// purpose: thread_local pools die after function-local statics during
  /// teardown, so the registry must never be destroyed before them.
  struct Registry {
    std::mutex mu;
    std::vector<BufferPool*> pools;
    std::uint64_t retired_acquires = 0;
    std::uint64_t retired_releases = 0;
  };
  static Registry& registry() {
    static Registry* r = new Registry;
    return *r;
  }

  /// Owner-thread increment: a relaxed load/store pair, not an atomic RMW —
  /// only this pool's thread writes, global_stats() merely reads.
  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  static std::uint16_t next_pool_id() {
    static std::atomic<std::uint16_t> v{0};
    return static_cast<std::uint16_t>(v.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  const std::uint16_t id_ = next_pool_id();
  Block* free_[kClasses] = {};
  Stats stats_;
  std::atomic<std::uint64_t> acq_{0};  ///< all acquires, owner-thread written
  std::atomic<std::uint64_t> rel_{0};  ///< all releases, owner-thread written
};

}  // namespace u5g
